//! Extended experiment E-neg: negative correctness. Every balanced
//! (negative) property function across work amounts, repetitions and
//! scales must produce zero findings.
//!
//! The process-count axis rides the experiment engine's `procs_grid`, so
//! all 12 configurations per property execute on the worker pool at once.
//! With `--trace-dir DIR` each property's default-parameter trace is
//! stored as an artifact (`--format` selects the encoding; default: ATSB
//! binary).
//!
//! Usage: `sweep_negative [jobs] [--trace-dir DIR] [--format {jsonl,binary}]
//!                        [--metrics PATH] [--manifest]`
//!        (`jobs 0` = all cores)

use ats_bench::{cli::CommonArgs, write_trace_artifact};
use ats_harness::experiment::Sweep;
use ats_harness::{ParamValues, Session};
use std::path::{Path, PathBuf};

fn main() {
    let args = CommonArgs::parse();
    let jobs: usize = args.positional_or(0, 0);
    let session = args.session(Session::builder().procs(4).jobs(jobs));
    println!("=== E-neg: false-positive scan over the negative catalog ===\n");
    let mut all_ok = true;
    let mut total_configs = 0usize;
    let mut total_secs = 0.0f64;
    let mut artifacts: Vec<PathBuf> = Vec::new();
    for spec in ats_core::CATALOG {
        if spec.expected_property.is_some() {
            continue;
        }
        let (rows, stats) = session
            .experiment(spec.name)
            .procs_grid([2, 4, 8])
            .sweep(Sweep::seconds("work", [0.001, 0.01, 0.05]))
            .sweep(Sweep::counts("r", [1, 4]))
            .run_with_stats()
            .expect("runnable");
        total_configs += stats.configs;
        total_secs += stats.wall_secs;
        let fps: usize = rows.iter().map(|r| r.unexpected_findings).sum();
        let ok = fps == 0;
        all_ok &= ok;
        println!(
            "{:<28} procs={{2,4,8}} configs={} false positives={fps} [{}]",
            spec.name,
            rows.len(),
            if ok { "ok" } else { "FAIL" }
        );
        if let Some(dir) = args.trace_dir() {
            let params = ParamValues::defaults(spec);
            let trace = session.run(spec.name, &params).expect("runnable");
            let path = write_trace_artifact(&trace, dir, spec.name, args.format());
            println!("  wrote {path}");
            artifacts.push(PathBuf::from(path));
        }
    }
    println!(
        "\n{total_configs} configs in {total_secs:.2}s = {:.1} configs/sec",
        if total_secs > 0.0 {
            total_configs as f64 / total_secs
        } else {
            0.0
        }
    );
    let artifact_refs: Vec<&Path> = artifacts.iter().map(PathBuf::as_path).collect();
    args.emit(&session, "sweep_negative", &artifact_refs);
    println!(
        "negative correctness sweep: {}",
        if all_ok { "ALL OK" } else { "FAILURES" }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
