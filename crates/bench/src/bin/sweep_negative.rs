//! Extended experiment E-neg: negative correctness. Every balanced
//! (negative) property function across work amounts, repetitions and
//! scales must produce zero findings.
//!
//! Usage: `sweep_negative`

use ats_harness::experiment::{Experiment, Sweep};
use ats_harness::RunOpts;

fn main() {
    println!("=== E-neg: false-positive scan over the negative catalog ===\n");
    let mut all_ok = true;
    for spec in ats_core::CATALOG {
        if spec.expected_property.is_some() {
            continue;
        }
        for nprocs in [2, 4, 8] {
            let rows = Experiment::new(spec.name)
                .sweep(Sweep::seconds("work", [0.001, 0.01, 0.05]))
                .sweep(Sweep::counts("r", [1, 4]))
                .opts(RunOpts::default().procs(nprocs))
                .run()
                .expect("runnable");
            let fps: usize = rows.iter().map(|r| r.unexpected_findings).sum();
            let ok = fps == 0;
            all_ok &= ok;
            println!(
                "{:<28} procs={nprocs} configs={} false positives={fps} [{}]",
                spec.name,
                rows.len(),
                if ok { "ok" } else { "FAIL" }
            );
        }
    }
    println!(
        "\nnegative correctness sweep: {}",
        if all_ok { "ALL OK" } else { "FAILURES" }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
