//! Extended experiment E-over: the paper's Chapter 2 procedure — run the
//! validation suite with and without instrumentation (results must match)
//! and measure the tool-side overhead with calibrated real work.
//!
//! Usage: `overhead [nprocs]`

use ats_harness::validation;
use ats_runtime::VDur;

fn main() {
    let nprocs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4usize);
    println!("=== E-over: semantics preservation + instrumentation overhead ===\n");
    println!("validation suite ({nprocs} procs):");
    let mut all = true;
    for r in validation::run_validation(nprocs) {
        all &= r.passed();
        println!(
            "  {:<18} plain={} instrumented={} outputs-equal={}  [{}]",
            r.name,
            r.correct_plain,
            r.correct_instrumented,
            r.outputs_equal,
            if r.passed() { "ok" } else { "FAIL" }
        );
    }
    println!("\nOpenMP validation suite (4 threads):");
    for r in validation::run_omp_validation(4) {
        all &= r.passed();
        println!(
            "  {:<18} plain={} instrumented={} outputs-equal={}  [{}]",
            r.name,
            r.correct_plain,
            r.correct_instrumented,
            r.outputs_equal,
            if r.passed() { "ok" } else { "FAIL" }
        );
    }
    println!("\noverhead (real calibrated work, 50 x 2ms steps):");
    let o = validation::measure_overhead(nprocs, VDur::from_millis(2), 50);
    println!(
        "  uninstrumented {:.3}s, instrumented {:.3}s, slowdown {:.3}x, {} events",
        o.plain_secs,
        o.instrumented_secs,
        o.slowdown(),
        o.events
    );
    std::process::exit(if all { 0 } else { 1 });
}
