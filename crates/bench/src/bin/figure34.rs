//! Regenerates the paper's Figure 3.4: two collections of MPI property
//! functions executing in parallel in different communicators (lower half:
//! point-to-point set; upper half: collective set).
//!
//! Usage: `figure34 [nprocs] [--svg DIR] [--trace-dir DIR]
//!                  [--format {jsonl,binary}] [--metrics PATH] [--manifest]`

use ats_bench::{cli::CommonArgs, write_trace_artifact};
use ats_harness::timeline;
use std::path::{Path, PathBuf};

fn main() {
    let args = CommonArgs::parse();
    let nprocs = args.positional_or(0, 16usize);
    let session = args.session(ats_bench::paper_session(nprocs));

    println!("=== Figure 3.4: two communicators, different property sets in parallel ===");
    println!(
        "(lower ranks 0..{}: late_sender + late_receiver;",
        nprocs / 2
    );
    println!(
        " upper ranks {}..{nprocs}: late_broadcast(root 1) + early_reduce + barrier imbalance)\n",
        nprocs / 2
    );
    let trace = ats_bench::figure34_trace_with(session.opts());
    print!("{}", timeline::render_text(&trace, 120));
    println!("\ncommunicators recorded in the trace:");
    for c in &trace.comms {
        println!("  comm {:>2}: members {:?}", c.id, c.members);
    }
    if let Some(dir) = args.svg_dir() {
        let path = format!("{dir}/figure34.svg");
        std::fs::write(&path, timeline::render_svg(&trace, 500)).expect("write svg");
        println!("wrote {path}");
    }
    let mut artifacts: Vec<PathBuf> = Vec::new();
    if let Some(dir) = args.trace_dir() {
        let path = write_trace_artifact(&trace, dir, "figure34", args.format());
        println!("wrote {path}");
        artifacts.push(PathBuf::from(path));
    }
    let artifact_refs: Vec<&Path> = artifacts.iter().map(PathBuf::as_path).collect();
    args.emit(&session, "figure34", &artifact_refs);
}
