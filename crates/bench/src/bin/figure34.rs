//! Regenerates the paper's Figure 3.4: two collections of MPI property
//! functions executing in parallel in different communicators (lower half:
//! point-to-point set; upper half: collective set).
//!
//! Usage: `figure34 [nprocs] [--svg DIR] [--trace-dir DIR] [--format {jsonl,binary}]`

use ats_bench::{flag, format_flag, split_flags, write_trace_artifact};
use ats_harness::timeline;

fn main() {
    let (positionals, flags) = split_flags(std::env::args().skip(1).collect());
    let nprocs = positionals
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(16usize);
    let svg_dir = flag(&flags, "svg");
    let trace_dir = flag(&flags, "trace-dir");
    let format = format_flag(&flags);

    println!("=== Figure 3.4: two communicators, different property sets in parallel ===");
    println!(
        "(lower ranks 0..{}: late_sender + late_receiver;",
        nprocs / 2
    );
    println!(
        " upper ranks {}..{nprocs}: late_broadcast(root 1) + early_reduce + barrier imbalance)\n",
        nprocs / 2
    );
    let trace = ats_bench::figure34_trace(nprocs);
    print!("{}", timeline::render_text(&trace, 120));
    println!("\ncommunicators recorded in the trace:");
    for c in &trace.comms {
        println!("  comm {:>2}: members {:?}", c.id, c.members);
    }
    if let Some(dir) = svg_dir {
        let path = format!("{dir}/figure34.svg");
        std::fs::write(&path, timeline::render_svg(&trace, 500)).expect("write svg");
        println!("wrote {path}");
    }
    if let Some(dir) = trace_dir {
        let path = write_trace_artifact(&trace, dir, "figure34", format);
        println!("wrote {path}");
    }
}
