//! Regenerates the paper's Figure 3.5: the EXPERT-style automatic analysis
//! of the two-communicator composite program — property pane, call-path
//! pane, and location pane.
//!
//! The paper's check: EXPERT finds *Late Broadcast*, locates it at the
//! `MPI_Bcast()` call inside `late_broadcast()`, and attributes it to the
//! upper communicator's non-root ranks (communicator-local root 1).
//!
//! Usage: `figure35 [nprocs]`

fn main() {
    let nprocs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16usize);
    let trace = ats_bench::figure34_trace(nprocs);
    let report = ats_analyzer::analyze(&trace, &ats_analyzer::AnalyzerConfig::default());
    println!("{}", report.render(&trace));

    println!("\n=== paper's correctness checks for this figure ===");
    let hits = report.findings_for("LateBroadcast");
    let localized = hits
        .iter()
        .any(|f| f.call_path.contains("late_broadcast") && f.call_path.contains("MPI_Bcast"));
    println!(
        "LateBroadcast detected:                    {}",
        !hits.is_empty()
    );
    println!("localized at late_broadcast/MPI_Bcast:     {localized}");
    let locs = report.locations_for("LateBroadcast");
    let expected: Vec<_> = (nprocs as u32 / 2..nprocs as u32)
        .filter(|&r| r != nprocs as u32 / 2 + 1)
        .collect();
    let got: Vec<u32> = locs.iter().map(|l| l.rank).collect();
    println!("blamed ranks: {got:?}");
    println!("expected (upper half minus its local root): {expected:?}");
    println!(
        "machine localization correct:              {}",
        got == expected
    );
}
