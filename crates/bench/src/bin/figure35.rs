//! Regenerates the paper's Figure 3.5: the EXPERT-style automatic analysis
//! of the two-communicator composite program — property pane, call-path
//! pane, and location pane.
//!
//! The paper's check: EXPERT finds *Late Broadcast*, locates it at the
//! `MPI_Bcast()` call inside `late_broadcast()`, and attributes it to the
//! upper communicator's non-root ranks (communicator-local root 1).
//!
//! With `--trace FILE` the analysis runs on a stored trace artifact
//! (e.g. one written by `figure34 --trace-dir`; ATSB binary or JSONL,
//! auto-detected) instead of re-executing the composite program.
//!
//! Usage: `figure35 [nprocs] [--trace FILE] [--metrics PATH] [--manifest]`

use ats_bench::cli::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    let nprocs_arg = args.positional_or(0, 16usize);
    let session = args.session(ats_bench::paper_session(nprocs_arg));
    let (trace, nprocs) = match args.flag("trace") {
        Some(path) => {
            let trace = ats_trace::io::read_path(path).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            });
            let nprocs = trace
                .locations
                .iter()
                .map(|l| l.location.rank as usize + 1)
                .max()
                .unwrap_or(0);
            (trace, nprocs)
        }
        None => (ats_bench::figure34_trace_with(session.opts()), nprocs_arg),
    };
    let report = session.analyze(&trace);
    println!("{}", report.render(&trace));

    println!("\n=== paper's correctness checks for this figure ===");
    let hits = report.findings_for("LateBroadcast");
    let localized = hits
        .iter()
        .any(|f| f.call_path.contains("late_broadcast") && f.call_path.contains("MPI_Bcast"));
    println!(
        "LateBroadcast detected:                    {}",
        !hits.is_empty()
    );
    println!("localized at late_broadcast/MPI_Bcast:     {localized}");
    let locs = report.locations_for("LateBroadcast");
    let expected: Vec<_> = (nprocs as u32 / 2..nprocs as u32)
        .filter(|&r| r != nprocs as u32 / 2 + 1)
        .collect();
    let got: Vec<u32> = locs.iter().map(|l| l.rank).collect();
    println!("blamed ranks: {got:?}");
    println!("expected (upper half minus its local root): {expected:?}");
    println!(
        "machine localization correct:              {}",
        got == expected
    );
    args.emit(&session, "figure35", &[]);
}
