//! Regenerates the paper's Figure 3.3: a timeline of the composite test
//! program that calls all MPI property functions with staggered
//! severities — "to quickly determine how many different performance
//! properties can be detected by a performance tool".
//!
//! Usage: `figure33 [nprocs] [--svg DIR] [--trace-dir DIR]
//!                  [--format {jsonl,binary}] [--metrics PATH] [--manifest]`

use ats_bench::{cli::CommonArgs, write_trace_artifact};
use ats_harness::timeline;
use std::path::{Path, PathBuf};

fn main() {
    let args = CommonArgs::parse();
    let nprocs = args.positional_or(0, 8usize);
    let session = args.session(ats_bench::paper_session(nprocs));

    println!("=== Figure 3.3: all MPI property functions in one program ===\n");
    let trace = ats_bench::figure33_trace_with(session.opts());
    print!("{}", timeline::render_text(&trace, 120));
    let report = session.analyze(&trace);
    println!("\nproperties detectable in this single program:");
    for prop in [
        "LateSender",
        "LateReceiver",
        "WaitAtBarrier",
        "WaitAtNxN",
        "LateBroadcast",
        "LateScatter",
        "EarlyReduce",
        "EarlyGather",
    ] {
        println!(
            "  {:<16} severity {:>7.3}%",
            prop,
            report.severity_of(prop) * 100.0
        );
    }
    if let Some(dir) = args.svg_dir() {
        let path = format!("{dir}/figure33.svg");
        std::fs::write(&path, timeline::render_svg(&trace, 500)).expect("write svg");
        println!("wrote {path}");
    }
    let mut artifacts: Vec<PathBuf> = Vec::new();
    if let Some(dir) = args.trace_dir() {
        let path = write_trace_artifact(&trace, dir, "figure33", args.format());
        println!("wrote {path}");
        artifacts.push(PathBuf::from(path));
    }
    let artifact_refs: Vec<&Path> = artifacts.iter().map(PathBuf::as_path).collect();
    args.emit(&session, "figure33", &artifact_refs);
}
