//! Regenerates the paper's Figure 3.3: a timeline of the composite test
//! program that calls all MPI property functions with staggered
//! severities — "to quickly determine how many different performance
//! properties can be detected by a performance tool".
//!
//! Usage: `figure33 [nprocs] [--svg DIR] [--trace-dir DIR] [--format {jsonl,binary}]`

use ats_bench::{flag, format_flag, split_flags, write_trace_artifact};
use ats_harness::timeline;

fn main() {
    let (positionals, flags) = split_flags(std::env::args().skip(1).collect());
    let nprocs = positionals
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(8usize);
    let svg_dir = flag(&flags, "svg");
    let trace_dir = flag(&flags, "trace-dir");
    let format = format_flag(&flags);

    println!("=== Figure 3.3: all MPI property functions in one program ===\n");
    let trace = ats_bench::figure33_trace(nprocs);
    print!("{}", timeline::render_text(&trace, 120));
    let report = ats_analyzer::analyze(&trace, &ats_analyzer::AnalyzerConfig::default());
    println!("\nproperties detectable in this single program:");
    for prop in [
        "LateSender",
        "LateReceiver",
        "WaitAtBarrier",
        "WaitAtNxN",
        "LateBroadcast",
        "LateScatter",
        "EarlyReduce",
        "EarlyGather",
    ] {
        println!(
            "  {:<16} severity {:>7.3}%",
            prop,
            report.severity_of(prop) * 100.0
        );
    }
    if let Some(dir) = svg_dir {
        let path = format!("{dir}/figure33.svg");
        std::fs::write(&path, timeline::render_svg(&trace, 500)).expect("write svg");
        println!("wrote {path}");
    }
    if let Some(dir) = trace_dir {
        let path = write_trace_artifact(&trace, dir, "figure33", format);
        println!("wrote {path}");
    }
}
