//! Trace-codec benchmark: sizes and encode/decode throughput of the ATSB
//! columnar binary format against the JSONL text format, measured on the
//! Figure 3.4 composite trace — plus a streaming-analysis stress section
//! that generates a large synthetic ATSB file and compares the streaming
//! ingest path against the materializing one (events/second and peak
//! RSS). Emits a machine-readable `BENCH_trace.json` (override the path
//! with `ATS_BENCH_JSON`) so codec and ingest performance are tracked
//! across revisions. Fails if the binary form loses the ≥5× size
//! advantage, stops round-tripping, the streaming and materializing
//! reports diverge, or streaming analysis drops below the throughput
//! floor (`ATS_STRESS_EPS_FLOOR` events/s, `ATS_STRESS_MIN_SPEEDUP` ×
//! materializing).
//!
//! Usage: `trace_bench [nprocs] [reps] [--stress-ranks N] [--stress-mb N]`
//! (defaults: 16 ranks, 5 reps, 64 stress ranks, 8 MB stress trace;
//! `--stress-mb 0` skips the stress section).

use ats_analyzer::{analyze_path, analyze_path_streaming, AnalyzerConfig};
use ats_bench::stress::{peak_rss_bytes, write_stress, StressConfig};
use ats_trace::{binfmt, io};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct TraceBenchDoc {
    experiment: &'static str,
    nprocs: usize,
    events: usize,
    reps: usize,
    jsonl_bytes: usize,
    binary_bytes: usize,
    /// `jsonl_bytes / binary_bytes` — the size advantage.
    size_ratio: f64,
    jsonl_encode_secs: f64,
    jsonl_decode_secs: f64,
    binary_encode_secs: f64,
    binary_decode_secs: f64,
    /// Throughput over each format's own byte volume, best-of-`reps`.
    binary_encode_mb_per_sec: f64,
    binary_decode_mb_per_sec: f64,
    jsonl_encode_mb_per_sec: f64,
    jsonl_decode_mb_per_sec: f64,
    /// `jsonl_secs / binary_secs` — the wall-clock advantage.
    encode_speedup: f64,
    decode_speedup: f64,
    /// Streaming-analysis stress measurement, absent under `--stress-mb 0`.
    stress: Option<StressDoc>,
}

#[derive(Serialize)]
struct StressDoc {
    ranks: u32,
    events: u64,
    file_bytes: u64,
    generate_secs: f64,
    streaming_secs: f64,
    streaming_events_per_sec: f64,
    /// Peak RSS sampled after the streaming pass (which runs first).
    streaming_peak_rss_bytes: Option<u64>,
    materializing_secs: f64,
    materializing_events_per_sec: f64,
    /// Peak RSS sampled after the materializing pass (process-wide high
    /// water, so it subsumes the streaming peak).
    materializing_peak_rss_bytes: Option<u64>,
    /// `streaming_events_per_sec / materializing_events_per_sec`.
    streaming_speedup: f64,
    /// Do the two paths produce identical findings?
    reports_identical: bool,
}

/// Best-of-`reps` wall time for `f`, plus its (last) result.
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn mb_per_sec(bytes: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        bytes as f64 / 1e6 / secs
    } else {
        0.0
    }
}

/// Field-by-field findings equality (byte-identity of the reports).
fn same_findings(a: &ats_analyzer::AnalysisReport, b: &ats_analyzer::AnalysisReport) -> bool {
    a.findings.len() == b.findings.len()
        && a.findings.iter().zip(&b.findings).all(|(x, y)| {
            x.property == y.property
                && x.call_path == y.call_path
                && x.wait == y.wait
                && x.severity.to_bits() == y.severity.to_bits()
                && x.locations == y.locations
        })
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run_stress(ranks: u32, mb: u64) -> StressDoc {
    let cfg = StressConfig::sized_mb(ranks, mb);
    let path = std::env::temp_dir().join(format!(
        "ats-trace-bench-stress-{}.atsb",
        std::process::id()
    ));
    let file = std::fs::File::create(&path).expect("create stress trace");
    let start = Instant::now();
    let file_bytes = write_stress(&cfg, std::io::BufWriter::new(file)).expect("write stress");
    let generate_secs = start.elapsed().as_secs_f64();

    // Streaming first: VmHWM is a process-wide high water, so sampling in
    // ascending-cost order attributes each phase's peak correctly.
    let analyzer_cfg = AnalyzerConfig::default();
    let start = Instant::now();
    let (streamed, stats) = analyze_path_streaming(&path, &analyzer_cfg).expect("stream analysis");
    let streaming_secs = start.elapsed().as_secs_f64();
    let streaming_peak_rss_bytes = peak_rss_bytes();

    let start = Instant::now();
    let (trace, materialized) = analyze_path(&path, &analyzer_cfg).expect("materializing analysis");
    let materializing_secs = start.elapsed().as_secs_f64();
    let materializing_peak_rss_bytes = peak_rss_bytes();
    assert_eq!(stats.events, trace.num_events() as u64);
    let reports_identical = same_findings(&streamed, &materialized);
    drop(trace);
    let _ = std::fs::remove_file(&path);

    let eps = |secs: f64| stats.events as f64 / secs.max(1e-9);
    StressDoc {
        ranks: cfg.ranks,
        events: stats.events,
        file_bytes,
        generate_secs,
        streaming_secs,
        streaming_events_per_sec: eps(streaming_secs),
        streaming_peak_rss_bytes,
        materializing_secs,
        materializing_events_per_sec: eps(materializing_secs),
        materializing_peak_rss_bytes,
        streaming_speedup: eps(streaming_secs) / eps(materializing_secs),
        reports_identical,
    }
}

fn main() {
    let (positionals, flags) = ats_bench::split_flags(std::env::args().skip(1).collect());
    let pos = |i: usize, default: usize| {
        positionals
            .get(i)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    };
    let num_flag = |name: &str, default: u64| -> u64 {
        match ats_bench::flag(&flags, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} needs an integer, got {v:?}");
                std::process::exit(2);
            }),
        }
    };
    let nprocs = pos(0, 16);
    let reps = pos(1, 5).max(1);
    let stress_ranks = num_flag("stress-ranks", 64).clamp(2, 1 << 16) as u32;
    let stress_mb = num_flag("stress-mb", 8);
    println!("=== trace codec: ATSB binary vs JSONL on the figure-3.4 composite ===\n");
    let trace = ats_bench::figure34_trace(nprocs);
    let events = trace.num_events();

    let (jsonl_encode_secs, jsonl) = timed(reps, || {
        let mut buf = Vec::new();
        io::write_jsonl(&trace, &mut buf).expect("jsonl encode");
        buf
    });
    let (jsonl_decode_secs, from_jsonl) = timed(reps, || {
        io::read_jsonl(jsonl.as_slice()).expect("jsonl decode")
    });
    let (binary_encode_secs, binary) = timed(reps, || binfmt::encode(&trace));
    let (binary_decode_secs, from_binary) =
        timed(reps, || binfmt::decode(&binary).expect("binary decode"));

    let original = serde_json::to_string(&trace).expect("trace serializes");
    let lossless = serde_json::to_string(&from_binary).expect("trace serializes") == original
        && serde_json::to_string(&from_jsonl).expect("trace serializes") == original;

    let stress = (stress_mb > 0).then(|| run_stress(stress_ranks, stress_mb));

    let doc = TraceBenchDoc {
        experiment: "trace-codec",
        nprocs,
        events,
        reps,
        jsonl_bytes: jsonl.len(),
        binary_bytes: binary.len(),
        size_ratio: jsonl.len() as f64 / binary.len() as f64,
        jsonl_encode_secs,
        jsonl_decode_secs,
        binary_encode_secs,
        binary_decode_secs,
        binary_encode_mb_per_sec: mb_per_sec(binary.len(), binary_encode_secs),
        binary_decode_mb_per_sec: mb_per_sec(binary.len(), binary_decode_secs),
        jsonl_encode_mb_per_sec: mb_per_sec(jsonl.len(), jsonl_encode_secs),
        jsonl_decode_mb_per_sec: mb_per_sec(jsonl.len(), jsonl_decode_secs),
        encode_speedup: jsonl_encode_secs / binary_encode_secs.max(1e-12),
        decode_speedup: jsonl_decode_secs / binary_decode_secs.max(1e-12),
        stress,
    };
    println!(
        "{nprocs} ranks, {events} events: jsonl {} B, binary {} B ({:.1}x smaller)",
        doc.jsonl_bytes, doc.binary_bytes, doc.size_ratio
    );
    println!(
        "encode: jsonl {:.3} ms, binary {:.3} ms ({:.1}x faster, {:.0} MB/s)",
        jsonl_encode_secs * 1e3,
        binary_encode_secs * 1e3,
        doc.encode_speedup,
        doc.binary_encode_mb_per_sec
    );
    println!(
        "decode: jsonl {:.3} ms, binary {:.3} ms ({:.1}x faster, {:.0} MB/s)",
        jsonl_decode_secs * 1e3,
        binary_decode_secs * 1e3,
        doc.decode_speedup,
        doc.binary_decode_mb_per_sec
    );
    println!("round-trip lossless (both formats): {lossless}");
    if let Some(s) = &doc.stress {
        let gb = |b: Option<u64>| {
            b.map(|b| format!("{:.0} MB", b as f64 / 1e6))
                .unwrap_or_else(|| "n/a".to_owned())
        };
        println!(
            "\nstress: {} ranks, {} events, {:.1} MB file (generated in {:.2} s)",
            s.ranks,
            s.events,
            s.file_bytes as f64 / 1e6,
            s.generate_secs
        );
        println!(
            "streaming:     {:.3} s, {:.2}M events/s, peak RSS {}",
            s.streaming_secs,
            s.streaming_events_per_sec / 1e6,
            gb(s.streaming_peak_rss_bytes)
        );
        println!(
            "materializing: {:.3} s, {:.2}M events/s, peak RSS {}",
            s.materializing_secs,
            s.materializing_events_per_sec / 1e6,
            gb(s.materializing_peak_rss_bytes)
        );
        println!(
            "streaming speedup: {:.2}x, reports identical: {}",
            s.streaming_speedup, s.reports_identical
        );
    }

    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_trace.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("-> {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }

    // Losslessness, the size floor, report identity, and the streaming
    // throughput floors are structural gates; raw wall-clock numbers are
    // reported but only gated as ratios/floors loose enough for noisy CI
    // machines.
    let mut ok = lossless && doc.size_ratio >= 5.0;
    if !ok {
        eprintln!(
            "FAIL: lossless={lossless}, size_ratio={:.2} (need >= 5)",
            doc.size_ratio
        );
    }
    if let Some(s) = &doc.stress {
        let eps_floor = env_f64("ATS_STRESS_EPS_FLOOR", 1e6);
        let min_speedup = env_f64("ATS_STRESS_MIN_SPEEDUP", 2.0);
        if !s.reports_identical {
            eprintln!("FAIL: streaming and materializing reports diverge");
            ok = false;
        }
        if s.streaming_events_per_sec < eps_floor {
            eprintln!(
                "FAIL: streaming analysis {:.0} events/s below floor {:.0}",
                s.streaming_events_per_sec, eps_floor
            );
            ok = false;
        }
        if s.streaming_speedup < min_speedup {
            eprintln!(
                "FAIL: streaming speedup {:.2}x below required {min_speedup:.2}x",
                s.streaming_speedup
            );
            ok = false;
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}
