//! Trace-codec benchmark: sizes and encode/decode throughput of the ATSB
//! columnar binary format against the JSONL text format, measured on the
//! Figure 3.4 composite trace. Emits a machine-readable `BENCH_trace.json`
//! (override the path with `ATS_BENCH_JSON`) so codec performance is
//! tracked across revisions, and fails if the binary form loses the ≥5×
//! size advantage the format exists for — or worse, stops round-tripping.
//!
//! Usage: `trace_bench [nprocs] [reps]`   (defaults: 16 ranks, 5 reps)

use ats_trace::{binfmt, io};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct TraceBenchDoc {
    experiment: &'static str,
    nprocs: usize,
    events: usize,
    reps: usize,
    jsonl_bytes: usize,
    binary_bytes: usize,
    /// `jsonl_bytes / binary_bytes` — the size advantage.
    size_ratio: f64,
    jsonl_encode_secs: f64,
    jsonl_decode_secs: f64,
    binary_encode_secs: f64,
    binary_decode_secs: f64,
    /// Throughput over each format's own byte volume, best-of-`reps`.
    binary_encode_mb_per_sec: f64,
    binary_decode_mb_per_sec: f64,
    jsonl_encode_mb_per_sec: f64,
    jsonl_decode_mb_per_sec: f64,
    /// `jsonl_secs / binary_secs` — the wall-clock advantage.
    encode_speedup: f64,
    decode_speedup: f64,
}

/// Best-of-`reps` wall time for `f`, plus its (last) result.
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn mb_per_sec(bytes: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        bytes as f64 / 1e6 / secs
    } else {
        0.0
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nprocs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5).max(1);
    println!("=== trace codec: ATSB binary vs JSONL on the figure-3.4 composite ===\n");
    let trace = ats_bench::figure34_trace(nprocs);
    let events = trace.num_events();

    let (jsonl_encode_secs, jsonl) = timed(reps, || {
        let mut buf = Vec::new();
        io::write_jsonl(&trace, &mut buf).expect("jsonl encode");
        buf
    });
    let (jsonl_decode_secs, from_jsonl) = timed(reps, || {
        io::read_jsonl(jsonl.as_slice()).expect("jsonl decode")
    });
    let (binary_encode_secs, binary) = timed(reps, || binfmt::encode(&trace));
    let (binary_decode_secs, from_binary) =
        timed(reps, || binfmt::decode(&binary).expect("binary decode"));

    let original = serde_json::to_string(&trace).expect("trace serializes");
    let lossless = serde_json::to_string(&from_binary).expect("trace serializes") == original
        && serde_json::to_string(&from_jsonl).expect("trace serializes") == original;

    let doc = TraceBenchDoc {
        experiment: "trace-codec",
        nprocs,
        events,
        reps,
        jsonl_bytes: jsonl.len(),
        binary_bytes: binary.len(),
        size_ratio: jsonl.len() as f64 / binary.len() as f64,
        jsonl_encode_secs,
        jsonl_decode_secs,
        binary_encode_secs,
        binary_decode_secs,
        binary_encode_mb_per_sec: mb_per_sec(binary.len(), binary_encode_secs),
        binary_decode_mb_per_sec: mb_per_sec(binary.len(), binary_decode_secs),
        jsonl_encode_mb_per_sec: mb_per_sec(jsonl.len(), jsonl_encode_secs),
        jsonl_decode_mb_per_sec: mb_per_sec(jsonl.len(), jsonl_decode_secs),
        encode_speedup: jsonl_encode_secs / binary_encode_secs.max(1e-12),
        decode_speedup: jsonl_decode_secs / binary_decode_secs.max(1e-12),
    };
    println!(
        "{nprocs} ranks, {events} events: jsonl {} B, binary {} B ({:.1}x smaller)",
        doc.jsonl_bytes, doc.binary_bytes, doc.size_ratio
    );
    println!(
        "encode: jsonl {:.3} ms, binary {:.3} ms ({:.1}x faster, {:.0} MB/s)",
        jsonl_encode_secs * 1e3,
        binary_encode_secs * 1e3,
        doc.encode_speedup,
        doc.binary_encode_mb_per_sec
    );
    println!(
        "decode: jsonl {:.3} ms, binary {:.3} ms ({:.1}x faster, {:.0} MB/s)",
        jsonl_decode_secs * 1e3,
        binary_decode_secs * 1e3,
        doc.decode_speedup,
        doc.binary_decode_mb_per_sec
    );
    println!("round-trip lossless (both formats): {lossless}");

    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_trace.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("-> {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }

    // Losslessness and the size floor are structural properties of the
    // codec and gate the exit code; the wall-clock speedups are reported
    // but not gated (CI machines are too noisy for hard timing asserts).
    let ok = lossless && doc.size_ratio >= 5.0;
    if !ok {
        eprintln!(
            "FAIL: lossless={lossless}, size_ratio={:.2} (need >= 5)",
            doc.size_ratio
        );
    }
    std::process::exit(if ok { 0 } else { 1 });
}
