//! Fuzz campaign driver: generate, execute, and oracle-score seeded
//! composite scenarios, shrink and persist anything that violates, and
//! emit a machine-readable `BENCH_fuzz.json` (override the path with
//! `ATS_BENCH_JSON`). Exits nonzero on any oracle violation or generator
//! nondeterminism — with the honest default analyzer a run is a
//! correctness gate, not just a throughput benchmark.
//!
//! Usage: `fuzz [count] [seed] [jobs] [--nprocs N] [--corpus DIR]
//!              [--replay] [--threshold T] [--no-shrink]
//!              [--metrics PATH] [--manifest]`
//!   (defaults: 200 scenarios, seed 0xA75F022, jobs auto)
//!
//! `--replay` re-runs every minimized scenario persisted under the corpus
//! directory instead of generating new ones: the regression guard for
//! previously-found analyzer defects. `--threshold` mis-calibrates the
//! analyzer under test — handy for watching the oracle catch a broken
//! tool (never use it in CI).

use ats_analyzer::AnalyzerConfig;
use ats_bench::cli::CommonArgs;
use ats_fuzz::campaign::{run_campaign, FuzzConfig, FuzzStats};
use ats_fuzz::{corpus, OracleConfig};
use ats_harness::Session;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct FuzzBenchDoc {
    experiment: &'static str,
    base_seed: u64,
    nprocs: usize,
    #[serde(flatten)]
    stats: FuzzStats,
}

fn parse_seed(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("seed")
    } else {
        s.parse().expect("seed")
    }
}

fn oracle_config(args: &CommonArgs) -> OracleConfig {
    let mut cfg = OracleConfig::default();
    if let Some(t) = args.flag("threshold") {
        cfg.analyzer = AnalyzerConfig::default().threshold(t.parse().expect("--threshold T"));
    }
    cfg
}

fn replay_corpus(args: &CommonArgs, session: &Session) -> i32 {
    let dir = args
        .flag("corpus")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(corpus::DEFAULT_DIR));
    let cfg = oracle_config(args);
    let results = match corpus::replay(&dir, &cfg, session.opts()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return 1;
        }
    };
    println!(
        "=== replaying {} corpus entries from {} ===\n",
        results.len(),
        dir.display()
    );
    let mut failing = 0;
    for r in &results {
        let status = if r.violations.is_empty() {
            "ok"
        } else {
            "VIOLATES"
        };
        println!("{:10} {}", status, r.entry.scenario);
        for v in &r.violations {
            println!("           {}: {}", v.kind, v.detail);
            failing += 1;
        }
    }
    if failing > 0 {
        eprintln!("\nFAIL: {failing} violation(s) across the corpus");
        1
    } else {
        println!("\nall corpus entries clean");
        0
    }
}

fn main() {
    let args = CommonArgs::parse();
    let count: usize = args.positional_or(0, 200);
    let seed = args
        .positionals
        .get(1)
        .map(|s| parse_seed(s))
        .unwrap_or(0xA75_F022);
    let jobs: usize = args.positional_or(2, 0);
    let nprocs = args
        .flag("nprocs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let session = args.session(Session::builder().procs(nprocs).jobs(jobs).seed(seed));
    if args.has("replay") {
        let code = replay_corpus(&args, &session);
        args.emit(&session, "fuzz_replay", &[]);
        std::process::exit(code);
    }

    let cfg = FuzzConfig {
        count,
        oracle: oracle_config(&args),
        shrink: !args.has("no-shrink"),
        corpus_dir: args.flag("corpus").map(PathBuf::from),
        ..FuzzConfig::for_session(&session)
    };
    println!(
        "=== fuzz: {} scenarios, seed {:#x}, {} ranks ===\n",
        cfg.count, cfg.base_seed, nprocs
    );
    let result = match run_campaign(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    let stats = &result.stats;
    println!(
        "{} scenarios ({} phases, {} events) in {:.2}s with {} worker(s): {:.1} scenarios/s",
        stats.scenarios,
        stats.phases_executed,
        stats.events,
        stats.wall_secs,
        stats.jobs,
        stats.scenarios_per_sec
    );
    println!(
        "violations: {} across {} scenario(s); regen mismatches: {}",
        stats.violations, stats.violating_scenarios, stats.regen_mismatches
    );
    for m in &result.minimized {
        println!("\nminimized witness: {}", m.scenario);
        for v in &m.violations {
            println!("  {}: {}", v.kind, v.detail);
        }
        if let Some(path) = &m.persisted {
            println!("  -> {}", path.display());
        }
    }

    let doc = FuzzBenchDoc {
        experiment: "fuzz",
        base_seed: cfg.base_seed,
        nprocs,
        stats: stats.clone(),
    };
    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_fuzz.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("-> {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    args.emit(&session, "fuzz", &[]);

    let ok = stats.violations == 0 && stats.regen_mismatches == 0;
    if !ok {
        eprintln!(
            "FAIL: {} violation(s), {} regen mismatch(es)",
            stats.violations, stats.regen_mismatches
        );
    }
    std::process::exit(if ok { 0 } else { 1 });
}
