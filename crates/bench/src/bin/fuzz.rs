//! Fuzz campaign driver: generate, execute, and oracle-score seeded
//! composite scenarios, shrink and persist anything that violates, and
//! emit a machine-readable `BENCH_fuzz.json` (override the path with
//! `ATS_BENCH_JSON`). Exits nonzero on any oracle violation or generator
//! nondeterminism — with the honest default analyzer a run is a
//! correctness gate, not just a throughput benchmark.
//!
//! Usage: `fuzz [count] [seed] [jobs] [--nprocs N] [--corpus DIR]
//!              [--replay] [--threshold T] [--no-shrink]`
//!   (defaults: 200 scenarios, seed 0xA75F022, jobs auto)
//!
//! `--replay` re-runs every minimized scenario persisted under the corpus
//! directory instead of generating new ones: the regression guard for
//! previously-found analyzer defects. `--threshold` mis-calibrates the
//! analyzer under test — handy for watching the oracle catch a broken
//! tool (never use it in CI).

use ats_analyzer::AnalyzerConfig;
use ats_fuzz::campaign::{run_campaign, FuzzConfig, FuzzStats};
use ats_fuzz::{corpus, OracleConfig};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct FuzzBenchDoc {
    experiment: &'static str,
    base_seed: u64,
    nprocs: usize,
    #[serde(flatten)]
    stats: FuzzStats,
}

struct Cli {
    count: usize,
    seed: u64,
    jobs: usize,
    nprocs: usize,
    corpus_dir: Option<PathBuf>,
    replay: bool,
    threshold: Option<f64>,
    shrink: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        count: 200,
        seed: 0xA75_F022,
        jobs: 0,
        nprocs: 8,
        corpus_dir: None,
        replay: false,
        threshold: None,
        shrink: true,
    };
    let mut positional = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nprocs" => {
                cli.nprocs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nprocs N");
            }
            "--corpus" => {
                cli.corpus_dir = Some(PathBuf::from(args.next().expect("--corpus DIR")));
            }
            "--replay" => cli.replay = true,
            "--threshold" => {
                cli.threshold = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threshold T"),
                );
            }
            "--no-shrink" => cli.shrink = false,
            other => {
                match positional {
                    0 => cli.count = other.parse().expect("count"),
                    1 => {
                        cli.seed = if let Some(hex) = other.strip_prefix("0x") {
                            u64::from_str_radix(hex, 16).expect("seed")
                        } else {
                            other.parse().expect("seed")
                        };
                    }
                    2 => cli.jobs = other.parse().expect("jobs"),
                    _ => panic!("unexpected argument `{other}`"),
                }
                positional += 1;
            }
        }
    }
    cli
}

fn oracle_config(cli: &Cli) -> OracleConfig {
    let mut cfg = OracleConfig::default();
    if let Some(t) = cli.threshold {
        cfg.analyzer = AnalyzerConfig::default().threshold(t);
    }
    cfg
}

fn replay_corpus(cli: &Cli) -> i32 {
    let dir = cli
        .corpus_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(corpus::DEFAULT_DIR));
    let cfg = oracle_config(cli);
    let opts = ats_harness::RunOpts::default().procs(cli.nprocs);
    let results = match corpus::replay(&dir, &cfg, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return 1;
        }
    };
    println!(
        "=== replaying {} corpus entries from {} ===\n",
        results.len(),
        dir.display()
    );
    let mut failing = 0;
    for r in &results {
        let status = if r.violations.is_empty() {
            "ok"
        } else {
            "VIOLATES"
        };
        println!("{:10} {}", status, r.entry.scenario);
        for v in &r.violations {
            println!("           {}: {}", v.kind, v.detail);
            failing += 1;
        }
    }
    if failing > 0 {
        eprintln!("\nFAIL: {failing} violation(s) across the corpus");
        1
    } else {
        println!("\nall corpus entries clean");
        0
    }
}

fn main() {
    let cli = parse_cli();
    if cli.replay {
        std::process::exit(replay_corpus(&cli));
    }

    let cfg = FuzzConfig {
        base_seed: cli.seed,
        count: cli.count,
        jobs: cli.jobs,
        gen: ats_fuzz::GenConfig {
            nprocs: cli.nprocs,
            ..ats_fuzz::GenConfig::default()
        },
        oracle: oracle_config(&cli),
        opts: ats_harness::RunOpts::default().procs(cli.nprocs),
        shrink: cli.shrink,
        corpus_dir: cli.corpus_dir.clone(),
    };
    println!(
        "=== fuzz: {} scenarios, seed {:#x}, {} ranks ===\n",
        cfg.count, cfg.base_seed, cli.nprocs
    );
    let result = match run_campaign(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    let stats = &result.stats;
    println!(
        "{} scenarios ({} phases, {} events) in {:.2}s with {} worker(s): {:.1} scenarios/s",
        stats.scenarios,
        stats.phases_executed,
        stats.events,
        stats.wall_secs,
        stats.jobs,
        stats.scenarios_per_sec
    );
    println!(
        "violations: {} across {} scenario(s); regen mismatches: {}",
        stats.violations, stats.violating_scenarios, stats.regen_mismatches
    );
    for m in &result.minimized {
        println!("\nminimized witness: {}", m.scenario);
        for v in &m.violations {
            println!("  {}: {}", v.kind, v.detail);
        }
        if let Some(path) = &m.persisted {
            println!("  -> {}", path.display());
        }
    }

    let doc = FuzzBenchDoc {
        experiment: "fuzz",
        base_seed: cfg.base_seed,
        nprocs: cli.nprocs,
        stats: stats.clone(),
    };
    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_fuzz.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("-> {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }

    let ok = stats.violations == 0 && stats.regen_mismatches == 0;
    if !ok {
        eprintln!(
            "FAIL: {} violation(s), {} regen mismatch(es)",
            stats.violations, stats.regen_mismatches
        );
    }
    std::process::exit(if ok { 0 } else { 1 });
}
