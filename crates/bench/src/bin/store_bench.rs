//! Store benchmark E-store: cold-vs-warm incremental campaign.
//!
//! Runs the same severity-sweep campaign (every positive catalog property
//! with its severity knob, as in E-pos) twice against one artifact store:
//! a *cold* pass on a fresh store executes and publishes every
//! configuration, then a *warm* pass re-runs the identical campaign and
//! must replay it from the store. The warm pass is the incremental
//! engine's whole value proposition, so it is gated:
//!
//! * warm hit rate must reach `--min-hit-rate` (default 0.95 — in
//!   practice 1.0: nothing changed);
//! * every warm row must be byte-identical to its cold counterpart
//!   (canonical-JSON comparison, the determinism guarantee);
//! * the warm pass must publish zero new bytes.
//!
//! Emits `BENCH_store.json` (override with `ATS_BENCH_JSON`) with both
//! phases' timing, hit/miss/byte counters and the warm speedup. The store
//! lives in `--cache-dir` (default `artifacts/store-bench`) and is wiped
//! at startup so the cold pass is honestly cold.
//!
//! Usage: `store_bench [nprocs] [jobs] [--cache-dir DIR]
//!                     [--min-hit-rate R] [--metrics PATH] [--manifest]`

use ats_bench::cli::CommonArgs;
use ats_harness::cache::row_to_json;
use ats_harness::experiment::Sweep;
use ats_harness::Session;
use ats_store::{CacheMode, Store};
use serde::Serialize;
use std::time::Instant;

/// Aggregated campaign counters for one pass over the catalog.
#[derive(Debug, Default, Serialize)]
struct PhaseDoc {
    phase: &'static str,
    properties: usize,
    configs: usize,
    cache_hits: usize,
    cache_misses: usize,
    cache_bytes_read: u64,
    cache_bytes_written: u64,
    wall_secs: f64,
    configs_per_sec: f64,
}

#[derive(Serialize)]
struct StoreBenchDoc {
    experiment: &'static str,
    nprocs: usize,
    phases: Vec<PhaseDoc>,
    store_entries: usize,
    store_bytes: u64,
    hit_rate: f64,
    min_hit_rate: f64,
    byte_identical: bool,
    /// Cold wall over warm wall: how much faster the unchanged campaign
    /// re-runs.
    warm_speedup: f64,
    gate_passed: bool,
}

/// One full campaign pass: every positive property, severity knob swept.
/// Returns each row's canonical JSON (the byte-identity evidence) plus
/// the aggregated counters.
fn campaign(session: &Session, phase: &'static str) -> (Vec<String>, PhaseDoc) {
    let knobs = [0.005, 0.01, 0.02];
    let started = Instant::now();
    let mut renders = Vec::new();
    let mut doc = PhaseDoc {
        phase,
        ..PhaseDoc::default()
    };
    for spec in ats_core::CATALOG {
        if spec.expected_property.is_none() {
            continue;
        }
        let knob = spec
            .params
            .iter()
            .find(|p| {
                matches!(
                    p.name,
                    "extrawork"
                        | "baseextrawork"
                        | "singlework"
                        | "masterwork"
                        | "bodywork"
                        | "delay"
                        | "growth"
                )
            })
            .map(|p| p.name);
        let mut exp = session.experiment(spec.name);
        if let Some(k) = knob {
            exp = exp.sweep(Sweep::seconds(k, knobs));
        }
        let (rows, stats) = exp.run_with_stats().expect("runnable");
        renders.extend(rows.iter().map(|r| row_to_json(r).render()));
        doc.properties += 1;
        doc.configs += stats.configs;
        doc.cache_hits += stats.cache_hits;
        doc.cache_misses += stats.cache_misses;
        doc.cache_bytes_read += stats.cache_bytes_read;
        doc.cache_bytes_written += stats.cache_bytes_written;
    }
    doc.wall_secs = started.elapsed().as_secs_f64();
    doc.configs_per_sec = if doc.wall_secs > 0.0 {
        doc.configs as f64 / doc.wall_secs
    } else {
        0.0
    };
    (renders, doc)
}

fn main() {
    let args = CommonArgs::parse();
    let nprocs: usize = args.positional_or(0, 4);
    let jobs: usize = args.positional_or(1, 0);
    let min_hit_rate: f64 = args
        .flag("min-hit-rate")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--min-hit-rate needs a number, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.95);
    let dir = args.flag("cache-dir").unwrap_or("artifacts/store-bench");
    // An honest cold pass starts from nothing.
    let _ = std::fs::remove_dir_all(dir);
    let session = |label: &str| {
        println!("--- {label} pass ---");
        args.session(
            Session::builder()
                .procs(nprocs)
                .jobs(jobs)
                .cache(CacheMode::ReadWrite)
                .cache_dir(dir),
        )
    };
    println!("=== E-store: cold-vs-warm incremental campaign ===\n");
    let cold_session = session("cold");
    let (cold_rows, cold) = campaign(&cold_session, "cold");
    println!(
        "cold: {} configs, {} misses, {} bytes published, {:.2}s",
        cold.configs, cold.cache_misses, cold.cache_bytes_written, cold.wall_secs
    );
    let warm_session = session("warm");
    let (warm_rows, warm) = campaign(&warm_session, "warm");
    println!(
        "warm: {} configs, {} hits, {} bytes replayed, {:.2}s",
        warm.configs, warm.cache_hits, warm.cache_bytes_read, warm.wall_secs
    );

    let hit_rate = if warm.configs > 0 {
        warm.cache_hits as f64 / warm.configs as f64
    } else {
        0.0
    };
    let byte_identical = cold_rows == warm_rows;
    let warm_speedup = cold.wall_secs / warm.wall_secs.max(1e-9);
    let store = Store::open(dir).expect("store reopens");
    let stats = store.stats();
    let gate_passed =
        hit_rate >= min_hit_rate && byte_identical && warm.cache_bytes_written == 0;
    let doc = StoreBenchDoc {
        experiment: "E-store",
        nprocs,
        phases: vec![cold, warm],
        store_entries: stats.entries,
        store_bytes: stats.bytes,
        hit_rate,
        min_hit_rate,
        byte_identical,
        warm_speedup,
        gate_passed,
    };
    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_store.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nwarning: could not write {json_path}: {e}"),
    }
    println!(
        "\nstore: {} entries, {} bytes | warm hit rate {:.1}% (gate >= {:.1}%) | byte-identical: {byte_identical} | warm speedup {warm_speedup:.1}x",
        doc.store_entries,
        doc.store_bytes,
        100.0 * hit_rate,
        100.0 * min_hit_rate,
    );
    args.emit(&warm_session, "store_bench", &[]);
    println!(
        "\nincremental-campaign gate: {}",
        if doc.gate_passed { "OK" } else { "REGRESSION" }
    );
    std::process::exit(if doc.gate_passed { 0 } else { 1 });
}
