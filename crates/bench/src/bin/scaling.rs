//! Extended experiment E-scale: how detected severities behave as the
//! process count grows, per property family — the "crossover shape" data
//! a tool developer needs to set thresholds that survive scale.
//!
//! Usage: `scaling`

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_harness::{run_single, ParamValues, RunOpts};

fn main() {
    let procs = [4usize, 8, 16, 32];
    let props = [
        "late_sender",
        "imbalance_at_mpi_barrier",
        "late_broadcast",
        "early_reduce",
        "imbalance_at_mpi_alltoall",
    ];
    println!("=== E-scale: severity vs process count (fixed per-property defaults) ===\n");
    print!("{:<28}", "property");
    for p in procs {
        print!(" P={p:<6}");
    }
    println!();
    for name in props {
        let spec = ats_core::catalog::find(name).expect("in catalog");
        let expected = spec.expected_property.expect("positive");
        print!("{name:<28}");
        for p in procs {
            let params = ParamValues::defaults(spec);
            let trace = run_single(name, &params, &RunOpts::default().procs(p)).expect("runnable");
            let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
            print!(" {:<8.4}", report.severity_of(expected));
        }
        println!();
    }
    println!(
        "\nreading: rooted 'late' properties intensify with P (more waiters per\n\
         late root); pairwise properties stay flat (the waiting fraction is\n\
         per-pair); 'early' root properties dilute with P (one waiting root\n\
         among P busy ranks)."
    );
}
