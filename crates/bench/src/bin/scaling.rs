//! Extended experiment E-scale: how detected severities behave as the
//! process count grows, per property family — the "crossover shape" data
//! a tool developer needs to set thresholds that survive scale.
//!
//! Each property's process-count grid runs concurrently on the experiment
//! engine's worker pool (the P=32 configuration dominates; the pool's
//! oversubscription guard keeps `jobs × 32` rank threads within budget).
//!
//! Usage: `scaling [jobs]`   (`jobs 0` = all cores)

use ats_analyzer::AnalyzerConfig;
use ats_harness::{Experiment, RunOpts};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let procs = [4usize, 8, 16, 32];
    let props = [
        "late_sender",
        "imbalance_at_mpi_barrier",
        "late_broadcast",
        "early_reduce",
        "imbalance_at_mpi_alltoall",
    ];
    println!("=== E-scale: severity vs process count (fixed per-property defaults) ===\n");
    print!("{:<28}", "property");
    for p in procs {
        print!(" P={p:<6}");
    }
    println!();
    let mut total_secs = 0.0f64;
    for name in props {
        let (rows, stats) = Experiment::new(name)
            .procs_grid(procs)
            .opts(RunOpts::default().jobs(jobs))
            .analyzer(AnalyzerConfig::default().threshold(0.0))
            .run_with_stats()
            .expect("runnable");
        total_secs += stats.wall_secs;
        print!("{name:<28}");
        for r in &rows {
            print!(" {:<8.4}", r.detected_severity);
        }
        println!();
    }
    println!("\n({} property grids in {total_secs:.2}s)", props.len());
    println!(
        "reading: rooted 'late' properties intensify with P (more waiters per\n\
         late root); pairwise properties stay flat (the waiting fraction is\n\
         per-pair); 'early' root properties dilute with P (one waiting root\n\
         among P busy ranks)."
    );
}
