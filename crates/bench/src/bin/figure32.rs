//! Regenerates the paper's Figure 3.2: Vampir timeline displays of two
//! executions of the single-property test program for
//! `imbalance_at_mpi_barrier` with different parameters.
//!
//! Usage: `figure32 [nprocs] [--svg DIR] [--trace-dir DIR] [--format {jsonl,binary}]`

use ats_bench::{flag, format_flag, split_flags, write_trace_artifact};
use ats_harness::timeline;

fn main() {
    let (positionals, flags) = split_flags(std::env::args().skip(1).collect());
    let nprocs = positionals
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(8usize);
    let svg_dir = flag(&flags, "svg");
    let trace_dir = flag(&flags, "trace-dir");
    let format = format_flag(&flags);

    println!("=== Figure 3.2: single-property test program, two parameterizations ===");
    println!("(program: imbalance_at_mpi_barrier; {nprocs} ranks; realistic model");
    println!(" with visible MPI_Init/MPI_Finalize phases, as in the paper)\n");
    for (idx, (label, trace)) in ats_bench::figure32_runs(nprocs).into_iter().enumerate() {
        println!("--- run {}: {label} ---", idx + 1);
        print!("{}", timeline::render_text(&trace, 100));
        let report = ats_analyzer::analyze(
            &trace,
            &ats_analyzer::AnalyzerConfig::default().with_setup_overhead(),
        );
        println!(
            "WaitAtBarrier severity: {:.2}%   MpiSetupOverhead severity: {:.2}%",
            report.severity_of("WaitAtBarrier") * 100.0,
            report.severity_of("MpiSetupOverhead") * 100.0,
        );
        println!(
            "(the paper notes the init/finalize overhead property is 'hard to avoid\n in the view of the small sizes of the test programs')\n"
        );
        if let Some(dir) = svg_dir {
            let path = format!("{dir}/figure32_run{}.svg", idx + 1);
            std::fs::write(&path, timeline::render_svg(&trace, 400)).expect("write svg");
            println!("wrote {path}");
        }
        if let Some(dir) = trace_dir {
            let stem = format!("figure32_run{}", idx + 1);
            let path = write_trace_artifact(&trace, dir, &stem, format);
            println!("wrote {path}");
        }
    }
}
