//! Regenerates the paper's Figure 3.2: Vampir timeline displays of two
//! executions of the single-property test program for
//! `imbalance_at_mpi_barrier` with different parameters.
//!
//! Usage: `figure32 [nprocs] [--svg DIR] [--trace-dir DIR]
//!                  [--format {jsonl,binary}] [--metrics PATH] [--manifest]`

use ats_analyzer::AnalyzerConfig;
use ats_bench::{cli::CommonArgs, write_trace_artifact};
use ats_harness::timeline;
use std::path::{Path, PathBuf};

fn main() {
    let args = CommonArgs::parse();
    let nprocs = args.positional_or(0, 8usize);
    let session = args.session(
        ats_bench::paper_session(nprocs).analyzer(AnalyzerConfig::default().with_setup_overhead()),
    );

    println!("=== Figure 3.2: single-property test program, two parameterizations ===");
    println!("(program: imbalance_at_mpi_barrier; {nprocs} ranks; realistic model");
    println!(" with visible MPI_Init/MPI_Finalize phases, as in the paper)\n");
    let mut artifacts: Vec<PathBuf> = Vec::new();
    for (idx, (label, trace)) in ats_bench::figure32_runs_with(session.opts())
        .into_iter()
        .enumerate()
    {
        println!("--- run {}: {label} ---", idx + 1);
        print!("{}", timeline::render_text(&trace, 100));
        let report = session.analyze(&trace);
        println!(
            "WaitAtBarrier severity: {:.2}%   MpiSetupOverhead severity: {:.2}%",
            report.severity_of("WaitAtBarrier") * 100.0,
            report.severity_of("MpiSetupOverhead") * 100.0,
        );
        println!(
            "(the paper notes the init/finalize overhead property is 'hard to avoid\n in the view of the small sizes of the test programs')\n"
        );
        if let Some(dir) = args.svg_dir() {
            let path = format!("{dir}/figure32_run{}.svg", idx + 1);
            std::fs::write(&path, timeline::render_svg(&trace, 400)).expect("write svg");
            println!("wrote {path}");
        }
        if let Some(dir) = args.trace_dir() {
            let stem = format!("figure32_run{}", idx + 1);
            let path = write_trace_artifact(&trace, dir, &stem, args.format());
            println!("wrote {path}");
            artifacts.push(PathBuf::from(path));
        }
    }
    let artifact_refs: Vec<&Path> = artifacts.iter().map(PathBuf::as_path).collect();
    args.emit(&session, "figure32", &artifact_refs);
}
