//! Service benchmark E-serve: replay flood against a warm store.
//!
//! Starts an in-process `ats-serve` server over a read-write store, warms
//! it with a small scenario set, then fires a flood of concurrent
//! `POST /v1/analyze` requests from persistent keep-alive clients. The
//! first flood round is a *barrier round*: every client writes its
//! request, all synchronize, and only then does anyone read a response —
//! so the configured client count is provably in flight simultaneously
//! (the main thread samples the server's live-connection count at the
//! barrier as evidence). Gates:
//!
//! * concurrency: live connections at the barrier >= the client count;
//! * zero dropped-then-acked requests: every request is answered `200`,
//!   nothing is shed (`ats_serve_shed_total` stays 0) and no transport
//!   errors occur;
//! * byte identity: every response body equals the offline
//!   `Report::to_json` bytes for that scenario (the `ats-report/1`
//!   freeze, end to end);
//! * p99 latency of the timed rounds <= `--max-p99-ms`;
//! * sustained throughput >= `--min-rps`.
//!
//! Emits `BENCH_serve.json` (override with `ATS_BENCH_JSON`). Usage:
//!
//! ```text
//! serve_bench [clients] [rounds] [--cache-dir DIR] [--workers N]
//!             [--max-p99-ms MS] [--min-rps N]
//! ```

use ats_bench::cli::CommonArgs;
use ats_core::json::Json;
use ats_fuzz::{oracle, Scenario};
use ats_harness::Session;
use ats_obs::ObsConfig;
use ats_serve::{Client, ServeConfig};
use ats_store::CacheMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// The warm scenario set: one template, distinct seeds, so every spec has
/// its own cache key but the same cheap execution cost.
fn spec_set(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("seed={} nprocs=2 | whole g0:late_sender r=1", 100 + i))
        .collect()
}

/// What one client thread observed across its rounds.
#[derive(Debug, Default)]
struct ClientTally {
    acked: usize,
    mismatched: usize,
    not_ok: usize,
    transport_errors: usize,
    latencies_ns: Vec<u64>,
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * p).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx] as f64 / 1e6
}

fn scrape_counter(metrics: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        rest.trim().parse().ok()
    })
}

fn main() {
    let args = CommonArgs::parse();
    let clients: usize = args.positional_or(0, 1000);
    let rounds: usize = args.positional_or(1, 4).max(1);
    let workers: usize = args.flag("workers").and_then(|v| v.parse().ok()).unwrap_or(16);
    let max_p99_ms: f64 = args
        .flag("max-p99-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000.0);
    let min_rps: f64 = args.flag("min-rps").and_then(|v| v.parse().ok()).unwrap_or(50.0);
    let dir = args.flag("cache-dir").unwrap_or("artifacts/serve-bench");
    let _ = std::fs::remove_dir_all(dir);

    println!("=== E-serve: {clients} concurrent clients x {rounds} rounds ===\n");

    // Offline ground truth: the same analysis with no service in the way.
    let specs = spec_set(8);
    let offline = Session::builder().build();
    let expected: Vec<Vec<u8>> = specs
        .iter()
        .map(|s| {
            let sc: Scenario = Scenario::parse_line(s).expect("spec parses");
            let trace = oracle::execute(&sc, offline.opts()).expect("spec runs");
            offline.analyze(&trace).to_json().into_bytes()
        })
        .collect();

    let session = Session::builder()
        .obs(ObsConfig::fresh())
        .cache(CacheMode::ReadWrite)
        .cache_dir(dir)
        .build();
    let config = ServeConfig {
        workers,
        max_conns: clients + 64,
        tenant_inflight: clients,
        request_timeout: Duration::from_secs(60),
        ..ServeConfig::default()
    };
    let handle = ats_serve::start(session, config).expect("server starts");
    let addr = handle.addr();
    println!("server on {addr} ({workers} workers)");

    // Warm phase: every spec executed and published once, then replayed.
    let warm_started = Instant::now();
    let mut warm = Client::new(addr);
    let mut warm_misses = 0usize;
    for spec in &specs {
        let r = warm.analyze(spec).expect("warm analyze");
        if !r.cached {
            warm_misses += 1;
        }
    }
    for (spec, want) in specs.iter().zip(&expected) {
        let r = warm.analyze(spec).expect("warm replay");
        assert!(r.cached, "second pass must hit the store");
        assert_eq!(r.report, *want, "stored report bytes must equal offline bytes");
    }
    let warm_secs = warm_started.elapsed().as_secs_f64();
    println!("warm: {} specs, {warm_misses} misses, {warm_secs:.2}s", specs.len());

    // Flood phase. Two barriers: `written` releases once every client has
    // its first request on the wire (main included, so it can sample the
    // server's live-connection count while all requests are provably
    // outstanding); `sampled` holds the clients until that sample is
    // taken, then everyone reads.
    let written = Arc::new(Barrier::new(clients + 1));
    let sampled = Arc::new(Barrier::new(clients + 1));
    let peak = Arc::new(AtomicUsize::new(0));
    let tallies: Arc<Mutex<Vec<ClientTally>>> = Arc::new(Mutex::new(Vec::new()));
    let specs = Arc::new(specs);
    let expected = Arc::new(expected);
    let flood_started = Instant::now();
    let mut threads = Vec::with_capacity(clients);
    for i in 0..clients {
        let written = Arc::clone(&written);
        let sampled = Arc::clone(&sampled);
        let specs = Arc::clone(&specs);
        let expected = Arc::clone(&expected);
        let tallies = Arc::clone(&tallies);
        threads.push(
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut client = Client::new(addr)
                        .with_tenant(format!("t{}", i % 8))
                        .with_timeout(Duration::from_secs(120));
                    let spec = &specs[i % specs.len()];
                    let want = &expected[i % specs.len()];
                    // Barrier round: write, synchronize, then read.
                    let started = client
                        .start("POST", "/v1/analyze", Some("text/plain"), spec.as_bytes())
                        .is_ok();
                    written.wait();
                    sampled.wait();
                    if started {
                        match client.finish() {
                            Ok(resp) if resp.status == 200 => {
                                tally.acked += 1;
                                if resp.body != *want {
                                    tally.mismatched += 1;
                                }
                            }
                            Ok(_) => tally.not_ok += 1,
                            Err(_) => tally.transport_errors += 1,
                        }
                    } else {
                        tally.transport_errors += 1;
                    }
                    // Timed rounds on the same keep-alive connection.
                    for round in 1..rounds {
                        let spec = &specs[(i + round) % specs.len()];
                        let want = &expected[(i + round) % specs.len()];
                        let t0 = Instant::now();
                        match client.request(
                            "POST",
                            "/v1/analyze",
                            Some("text/plain"),
                            spec.as_bytes(),
                        ) {
                            Ok(resp) if resp.status == 200 => {
                                tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                                tally.acked += 1;
                                if resp.body != *want {
                                    tally.mismatched += 1;
                                }
                            }
                            Ok(_) => tally.not_ok += 1,
                            Err(_) => tally.transport_errors += 1,
                        }
                    }
                    tallies.lock().unwrap().push(tally);
                })
                .expect("spawn client"),
        );
    }
    // Once every client has written (and is parked before reading),
    // sample the server's view of concurrency, then release the reads.
    written.wait();
    peak.store(handle.live_connections(), Ordering::SeqCst);
    sampled.wait();
    for t in threads {
        t.join().expect("client thread");
    }
    let flood_secs = flood_started.elapsed().as_secs_f64();

    let tallies = Arc::try_unwrap(tallies).unwrap().into_inner().unwrap();
    let mut latencies: Vec<u64> = tallies.iter().flat_map(|t| t.latencies_ns.clone()).collect();
    latencies.sort_unstable();
    let acked: usize = tallies.iter().map(|t| t.acked).sum();
    let mismatched: usize = tallies.iter().map(|t| t.mismatched).sum();
    let not_ok: usize = tallies.iter().map(|t| t.not_ok).sum();
    let transport_errors: usize = tallies.iter().map(|t| t.transport_errors).sum();
    let total = clients * rounds;
    let rps = acked as f64 / flood_secs.max(1e-9);
    let p50_ms = percentile_ms(&latencies, 0.50);
    let p99_ms = percentile_ms(&latencies, 0.99);
    let concurrent_peak = peak.load(Ordering::SeqCst);

    let metrics = Client::new(addr).metrics().unwrap_or_default();
    let shed = scrape_counter(&metrics, "ats_serve_shed_total").unwrap_or(0);
    let served = scrape_counter(&metrics, "ats_serve_requests_total").unwrap_or(0);
    handle.shutdown();

    let gate_concurrency = concurrent_peak >= clients;
    let gate_no_drops = acked == total && not_ok == 0 && transport_errors == 0 && shed == 0;
    let gate_bytes = mismatched == 0;
    let gate_p99 = p99_ms <= max_p99_ms;
    let gate_rps = rps >= min_rps;
    let gate_passed = gate_concurrency && gate_no_drops && gate_bytes && gate_p99 && gate_rps;

    let doc = Json::obj()
        .with("experiment", "E-serve")
        .with("clients", clients)
        .with("rounds", rounds)
        .with("workers", workers)
        .with("spec_set", specs.len())
        .with(
            "phases",
            vec![
                Json::obj()
                    .with("phase", "warm")
                    .with("specs", specs.len())
                    .with("misses", warm_misses)
                    .with("wall_secs", warm_secs),
                Json::obj()
                    .with("phase", "flood")
                    .with("requests", total)
                    .with("acked", acked)
                    .with("not_ok", not_ok)
                    .with("transport_errors", transport_errors)
                    .with("mismatched_bodies", mismatched)
                    .with("concurrent_peak", concurrent_peak)
                    .with("shed", shed)
                    .with("served_total", served)
                    .with("wall_secs", flood_secs)
                    .with("rps", rps)
                    .with("p50_ms", p50_ms)
                    .with("p99_ms", p99_ms),
            ],
        )
        .with(
            "gates",
            Json::obj()
                .with("concurrency", gate_concurrency)
                .with("no_drops", gate_no_drops)
                .with("byte_identical", gate_bytes)
                .with("p99", gate_p99)
                .with("throughput", gate_rps),
        )
        .with("max_p99_ms", max_p99_ms)
        .with("min_rps", min_rps)
        .with("gate_passed", gate_passed);
    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_owned());
    match std::fs::write(&json_path, doc.render_pretty()) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nwarning: could not write {json_path}: {e}"),
    }

    println!(
        "\nflood: {acked}/{total} acked in {flood_secs:.2}s ({rps:.0} req/s) | in-flight peak {concurrent_peak} (gate >= {clients}) | p50 {p50_ms:.1}ms p99 {p99_ms:.1}ms (gate <= {max_p99_ms:.0}ms) | shed {shed} | byte-identical: {gate_bytes}"
    );
    println!(
        "\nserve gate: {}",
        if gate_passed { "OK" } else { "REGRESSION" }
    );
    std::process::exit(if gate_passed { 0 } else { 1 });
}
