//! Measures the cost of self-observability on the suite's composite hot
//! path: the figure-3.4 two-communicator program plus its full analysis,
//! timed with observability off and on (fresh registry, all five
//! subsystem layers recording). Emits `BENCH_obs.json` (override with
//! `ATS_BENCH_JSON`) and a sample run manifest, and exits nonzero when
//! the measured overhead exceeds the budget (default 2%, override with
//! `ATS_OBS_BUDGET_PCT`) — the observability layer's promise is that it
//! is cheap enough to leave on.
//!
//! Best-of-N timing (default 5 reps, first positional overrides): the
//! minimum is the least scheduler-noisy estimate of the true cost on a
//! shared CI box.
//!
//! Usage: `obs_overhead [reps] [nprocs]`

use ats_harness::Session;
use ats_obs::ObsConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ObsBenchDoc {
    experiment: &'static str,
    nprocs: usize,
    reps: usize,
    disabled_best_secs: f64,
    enabled_best_secs: f64,
    overhead_pct: f64,
    budget_pct: f64,
    events: usize,
}

fn best_of(reps: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..reps {
        let start = Instant::now();
        events = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, events)
}

fn composite_pass(session: &Session) -> usize {
    let trace = ats_bench::figure34_trace_with(session.opts());
    let report = session.analyze(&trace);
    // Keep the analysis observable so the whole pass stays live code.
    trace.num_events() + report.findings.len()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let nprocs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let budget_pct: f64 = std::env::var("ATS_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    println!("=== obs_overhead: figure-3.4 composite + analysis, {reps} reps ===\n");
    let off = ats_bench::paper_session(nprocs).build();
    let (disabled_best, events) = best_of(reps, || composite_pass(&off));
    println!("observability off: best {disabled_best:.4}s ({events} events)");

    // A fresh registry per measured session: the measurement must not
    // accumulate into (or depend on) process-global state.
    let on = ats_bench::paper_session(nprocs)
        .obs(ObsConfig::fresh())
        .build();
    let (enabled_best, _) = best_of(reps, || composite_pass(&on));
    println!("observability on:  best {enabled_best:.4}s");

    let overhead_pct = if disabled_best > 0.0 {
        (enabled_best - disabled_best) / disabled_best * 100.0
    } else {
        0.0
    };
    println!("overhead: {overhead_pct:+.2}% (budget {budget_pct}%)");

    let doc = ObsBenchDoc {
        experiment: "obs_overhead",
        nprocs,
        reps,
        disabled_best_secs: disabled_best,
        enabled_best_secs: enabled_best,
        overhead_pct,
        budget_pct,
        events,
    };
    let json_path = std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("-> {json_path}"),
        Err(e) => eprintln!("warning: could not write {json_path}: {e}"),
    }
    if let Some(manifest) = on.manifest("obs_overhead") {
        let path = "obs_overhead.manifest.json";
        match std::fs::write(path, manifest.to_json_pretty()) {
            Ok(()) => println!("-> {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    if overhead_pct > budget_pct {
        eprintln!("FAIL: observability overhead {overhead_pct:.2}% exceeds {budget_pct}% budget");
        std::process::exit(1);
    }
    println!("observability overhead within budget");
}
