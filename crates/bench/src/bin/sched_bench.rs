//! Scheduler benchmark E-sched: throughput of the discrete-event rank
//! scheduler against the one-OS-thread-per-rank backend.
//!
//! The workload is a collective superstep — the catalog's dominant
//! pattern (imbalance at barrier, late broadcast, early reduce): every
//! round staggers per-rank virtual work, broadcasts a token, then meets
//! the world at a barrier, an allreduce, a rotating-root reduce, and a
//! closing barrier; every fourth round adds a rendezvous (`MPI_Ssend`)
//! neighbor exchange. All virtual-time, so wall clock is pure simulator
//! + scheduler cost. Collectives dominate deliberately: each one wakes
//! all P members, which is where the two backends differ most (a condvar
//! broadcast of P OS threads vs P user-space heap pops).
//!
//! Each cell also times an empty (zero-round) run of the same
//! configuration and reports *net* events/sec with that baseline
//! subtracted: world setup/teardown and trace assembly are the same code
//! on both backends, so the net figure isolates what the gate is about —
//! the per-event scheduling cost. Both raw and net rates are emitted.
//! The gated 256-rank cells take the best of five repetitions, larger
//! cells best-of-three down to one at 8192 (as `obs_overhead` does), to
//! keep the gate off the noise floor.
//!
//! Runs the event backend at 64 → 8192 ranks and the thread backend at
//! 256 ranks. The two backends produce byte-identical traces for this
//! workload (asserted), so events/sec is directly comparable.
//!
//! Emits `BENCH_sched.json` (override with `ATS_BENCH_JSON`) and gates:
//! the event backend must deliver at least `--min-ratio` (default 10)
//! times the thread backend's net events/sec at 256 ranks. Exits
//! non-zero when the gate fails.
//!
//! Usage: `sched_bench [rounds] [--min-ratio R] [--metrics PATH] [--manifest]`

use ats_bench::cli::CommonArgs;
use ats_mpi::{run, Proc, SimBackend, SimConfig};
use ats_runtime::VDur;
use serde::Serialize;
use std::time::Instant;

/// One timed configuration.
#[derive(Serialize)]
struct SchedRow {
    backend: &'static str,
    nprocs: usize,
    rounds: usize,
    trace_events: usize,
    sched_events: u64,
    sched_ready_depth_max: u64,
    wall_secs: f64,
    /// Wall seconds of a zero-round run of the same configuration
    /// (setup, teardown, trace assembly — backend-independent code).
    baseline_secs: f64,
    events_per_sec: f64,
    /// Events over wall-minus-baseline: the scheduling-cost rate.
    net_events_per_sec: f64,
    ranks_per_sec: f64,
}

#[derive(Serialize)]
struct SchedBenchDoc {
    experiment: &'static str,
    rows: Vec<SchedRow>,
    /// Event-backend net events/sec over thread-backend net events/sec
    /// at the 256-rank comparison point.
    ratio_at_256: f64,
    min_ratio: f64,
    gate_passed: bool,
}

/// The measured workload (see module docs).
fn body(p: &mut Proc, rounds: usize) {
    let world = p.comm_world();
    let n = world.size();
    let me = p.rank();
    for round in 0..rounds {
        p.do_work(VDur::from_micros((((me + round) % 13) * 10) as u64));
        if round % 4 == 3 {
            let dst = (me + 1) % n;
            let src = (me + n - 1) % n;
            // Odd ranks receive first so the rendezvous ring cannot
            // deadlock at any size.
            if me % 2 == 0 {
                p.ssend(&[round as u8], dst, 1, &world);
                let _ = p.recv(src, 1, &world);
            } else {
                let _ = p.recv(src, 1, &world);
                p.ssend(&[round as u8], dst, 1, &world);
            }
        }
        let mut token = if me == 0 {
            vec![round as u8]
        } else {
            Vec::new()
        };
        p.bcast(&mut token, 0, &world);
        p.barrier(&world);
        let _ = p.allreduce(
            &(me as i64).to_le_bytes(),
            ats_mpi::ReduceOp::Sum,
            ats_mpi::Datatype::Int64,
            &world,
        );
        let _ = p.reduce(
            &(round as i64).to_le_bytes(),
            ats_mpi::ReduceOp::Max,
            ats_mpi::Datatype::Int64,
            round % n,
            &world,
        );
        p.barrier(&world);
    }
}

fn timed_run(backend: SimBackend, nprocs: usize, rounds: usize) -> (ats_obs::Handle, usize, f64) {
    let obs = ats_obs::Handle::new();
    let config = SimConfig::with_procs(nprocs).backend(backend);
    let config = SimConfig {
        obs: Some(obs.clone()),
        ..config
    };
    let started = Instant::now();
    let trace = run(config, move |p| body(p, rounds));
    let wall = started.elapsed().as_secs_f64();
    (obs, trace.num_events(), wall)
}

/// Best-of-`reps` measurement (the least scheduler-noisy estimate, as in
/// `obs_overhead`): minimum wall for both the workload and the baseline.
fn measure(backend: SimBackend, nprocs: usize, rounds: usize, reps: usize) -> SchedRow {
    let baseline_secs = (0..reps)
        .map(|_| timed_run(backend, nprocs, 0).2)
        .fold(f64::INFINITY, f64::min);
    let (mut obs, mut trace_events, mut wall_secs) = timed_run(backend, nprocs, rounds);
    for _ in 1..reps {
        let (o, ev, wall) = timed_run(backend, nprocs, rounds);
        if wall < wall_secs {
            (obs, trace_events, wall_secs) = (o, ev, wall);
        }
    }
    let net_secs = (wall_secs - baseline_secs).max(1e-9);
    SchedRow {
        backend: backend.effective().label(),
        nprocs,
        rounds,
        trace_events,
        sched_events: obs.mpi.sched_events.get(),
        sched_ready_depth_max: obs.mpi.sched_ready_depth_max.get(),
        wall_secs,
        baseline_secs,
        events_per_sec: trace_events as f64 / wall_secs.max(1e-9),
        net_events_per_sec: trace_events as f64 / net_secs,
        ranks_per_sec: nprocs as f64 / wall_secs.max(1e-9),
    }
}

fn print_row(row: &SchedRow) {
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>10.3} {:>14.0} {:>14.0} {:>12.0}",
        row.backend,
        row.nprocs,
        row.trace_events,
        row.sched_events,
        row.wall_secs,
        row.events_per_sec,
        row.net_events_per_sec,
        row.ranks_per_sec
    );
}

fn main() {
    let args = CommonArgs::parse();
    let rounds: usize = args.positional_or(0, 12);
    let min_ratio: f64 = args
        .flag("min-ratio")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--min-ratio needs a number, got {v:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(10.0);
    println!("=== E-sched: discrete-event scheduler throughput ===\n");
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>10} {:>14} {:>14} {:>12}",
        "backend",
        "ranks",
        "trace-ev",
        "sched-ev",
        "wall-s",
        "events/sec",
        "net-ev/sec",
        "ranks/sec"
    );
    let mut rows = Vec::new();
    for nprocs in [64usize, 256, 1024, 4096, 8192] {
        // Five repetitions at the gated comparison point, three where a
        // cell is still cheap, one at the wide end.
        let reps = if nprocs <= 256 {
            5
        } else if nprocs <= 1024 {
            3
        } else {
            1
        };
        let row = measure(SimBackend::Event, nprocs, rounds, reps);
        print_row(&row);
        rows.push(row);
    }
    let thread = measure(SimBackend::Thread, 256, rounds, 5);
    print_row(&thread);
    let event_at_256 = rows
        .iter()
        .find(|r| r.nprocs == 256)
        .expect("256 is in the grid");
    assert_eq!(
        event_at_256.trace_events, thread.trace_events,
        "backends must produce identical traces for the benchmark workload"
    );
    let ratio_at_256 = event_at_256.net_events_per_sec / thread.net_events_per_sec.max(1e-9);
    // On targets without a coroutine implementation the event backend
    // falls back to threads; the ratio gate would be meaningless there.
    let gate_applies = SimBackend::event_supported();
    let gate_passed = !gate_applies || ratio_at_256 >= min_ratio;
    rows.push(thread);
    let doc = SchedBenchDoc {
        experiment: "E-sched",
        rows,
        ratio_at_256,
        min_ratio,
        gate_passed,
    };
    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_sched.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\nwarning: could not write {json_path}: {e}"),
    }
    println!(
        "event/thread net events-per-sec ratio at 256 ranks: {ratio_at_256:.1}x (gate: >= {min_ratio}x)"
    );
    if !gate_applies {
        println!("gate skipped: no coroutine backend on this target");
    }
    println!(
        "\nscheduler gate: {}",
        if gate_passed { "OK" } else { "REGRESSION" }
    );
    std::process::exit(if gate_passed { 0 } else { 1 });
}
