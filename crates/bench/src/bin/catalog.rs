//! Prints the ATS property-function catalog (the paper's §3.1.5 list plus
//! the ASL-catalog extensions), with parameters and expectations.
//!
//! Usage: `catalog [--generate DIR]` — with `--generate`, also writes the
//! auto-generated single-property test programs to DIR.

use ats_core::catalog::CATALOG;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "{:<32} {:<14} {:<22} {:<14} paper?",
        "property function", "paradigm", "expected property", "localized at"
    );
    println!("{}", "-".repeat(100));
    for spec in CATALOG {
        println!(
            "{:<32} {:<14} {:<22} {:<14} {}",
            spec.name,
            format!("{:?}", spec.paradigm),
            spec.expected_property.unwrap_or("(none)"),
            spec.localized_at,
            if spec.in_paper_prototype {
                "yes"
            } else {
                "ext"
            }
        );
    }
    println!(
        "\n{} property functions ({} from the paper's prototype)",
        CATALOG.len(),
        CATALOG.iter().filter(|s| s.in_paper_prototype).count()
    );

    if let Some(i) = args.iter().position(|a| a == "--generate") {
        let dir = args.get(i + 1).expect("--generate needs a directory");
        std::fs::create_dir_all(dir).expect("create dir");
        for (name, src) in ats_harness::generate::generate_all() {
            let path = format!("{dir}/{name}");
            std::fs::write(&path, src).expect("write generated program");
            println!("generated {path}");
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--fortran") {
        let dir = args.get(i + 1).expect("--fortran needs a directory");
        std::fs::create_dir_all(dir).expect("create dir");
        for (name, src) in ats_harness::generate::generate_all_fortran() {
            let path = format!("{dir}/{name}");
            std::fs::write(&path, src).expect("write generated program");
            println!("generated {path}");
        }
    }
}
