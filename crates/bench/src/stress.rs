//! Closed-form stress-trace generator for the streaming analysis path.
//!
//! The figure programs exercise the analyzer at paper scale (tens of
//! ranks, thousands of events); measuring the *streaming* ingest path
//! needs traces far larger than any simulation run can produce in CI
//! time. This module fabricates an arbitrarily large composite trace
//! directly — every rank's event stream is a pure function of
//! `(config, rank)`, so blocks are generated one location at a time and
//! fed to [`BlockWriter`]: the emitted file can exceed available memory.
//!
//! The synthetic program per repetition: `inner` compute bursts
//! (`do_work` enter/exit pairs), a pairwise exchange in which even ranks
//! send late to their odd neighbor (a Late Sender per pair per rep), and
//! every eighth rep a staggered barrier (Wait at Barrier) followed by a
//! late-root broadcast (Late Broadcast). Streams are time-monotone,
//! properly nested, and emitted in ascending `(rank, thread)` order —
//! exactly what [`analyze_stream`](ats_analyzer::analyze_stream)
//! requires.

use ats_runtime::VTime;
use ats_trace::binfmt::BlockWriter;
use ats_trace::io::TraceIoError;
use ats_trace::{
    CollOp, CommDef, Event, EventKind, LocationId, LocationTrace, RegionId, RegionKind, RegionMeta,
};
use std::io::Write;

/// Shape of one generated stress trace.
#[derive(Debug, Clone, Copy)]
pub struct StressConfig {
    /// Ranks (= locations; one thread per rank).
    pub ranks: u32,
    /// Repetitions of the compute/exchange/collective cycle.
    pub reps: u64,
    /// `do_work` enter/exit pairs per repetition.
    pub inner: u64,
}

// Virtual-time constants (ns). One repetition occupies a fixed slot so
// every timestamp is a closed-form function of (rank, rep). The planted
// waits are sized to clear the analyzer's default severity threshold
// (0.5% of allocation time) at the default 64-rank/128-burst shape.
const WORK: u64 = 1_000;
const P2P_SLOT: u64 = 30_000;
const SEND_LATENESS: u64 = 20_000;
const BARRIER_STAGGER: u64 = 2_000;
const ROOT_LATENESS: u64 = 50_000;
const START: u64 = 1_000;

impl StressConfig {
    /// A configuration sized to emit roughly `mb` megabytes of ATSB at
    /// `ranks` ranks. The estimate assumes ~4 bytes per event on disk
    /// (tag byte + small varint deltas); the actual file lands within a
    /// few tens of percent, which is all throughput measurement needs.
    pub fn sized_mb(ranks: u32, mb: u64) -> Self {
        let mut cfg = StressConfig {
            ranks,
            reps: 1,
            inner: 128,
        };
        let per_rep = cfg.events_total().saturating_sub(2 * ranks as u64);
        let target_events = mb * 1_000_000 / 4;
        cfg.reps = (target_events / per_rep.max(1)).max(1);
        cfg
    }

    /// Total events across all ranks.
    pub fn events_total(&self) -> u64 {
        (0..self.ranks)
            .map(|r| self.rank_event_count(r))
            .sum()
    }

    fn coll_reps(&self) -> u64 {
        self.reps.div_ceil(8)
    }

    fn rank_event_count(&self, rank: u32) -> u64 {
        // main enter/exit + work pairs + p2p (3 events when paired) +
        // collective reps (3 events per barrier + 3 per bcast).
        let paired = self.ranks % 2 == 0 || rank + 1 < self.ranks;
        2 + self.reps * (2 * self.inner + if paired { 3 } else { 0 }) + self.coll_reps() * 6
    }

    fn rep_slot(&self) -> u64 {
        2 * self.inner * WORK + P2P_SLOT + self.coll_slot()
    }

    fn coll_slot(&self) -> u64 {
        self.ranks as u64 * BARRIER_STAGGER + ROOT_LATENESS + 3_000
    }
}

/// The fixed region table of every stress trace.
pub fn stress_regions() -> Vec<RegionMeta> {
    let r = |name: &str, kind| RegionMeta {
        name: name.to_owned(),
        kind,
    };
    vec![
        r("main", RegionKind::User),
        r("do_work", RegionKind::Work),
        r("MPI_Send", RegionKind::MpiP2p),
        r("MPI_Recv", RegionKind::MpiP2p),
        r("MPI_Barrier", RegionKind::MpiCollective),
        r("MPI_Bcast", RegionKind::MpiCollective),
    ]
}

const R_MAIN: RegionId = RegionId(0);
const R_WORK: RegionId = RegionId(1);
const R_SEND: RegionId = RegionId(2);
const R_RECV: RegionId = RegionId(3);
const R_BARRIER: RegionId = RegionId(4);
const R_BCAST: RegionId = RegionId(5);

/// The single world communicator of a stress trace.
pub fn stress_comms(ranks: u32) -> Vec<CommDef> {
    vec![CommDef {
        id: 0,
        members: (0..ranks).collect(),
    }]
}

/// The full event stream of one rank — a pure function of the config.
pub fn stress_location(cfg: &StressConfig, rank: u32) -> LocationTrace {
    let n = cfg.ranks;
    let mut ev = Vec::with_capacity(cfg.rank_event_count(rank) as usize);
    let t = |ns: u64| VTime(ns);
    let push = |ev: &mut Vec<Event>, ns: u64, kind: EventKind| ev.push(Event::new(t(ns), kind));

    push(&mut ev, START, EventKind::Enter { region: R_MAIN });
    let body = START + 1_000;
    for k in 0..cfg.reps {
        let rep = body + k * cfg.rep_slot();
        for j in 0..cfg.inner {
            push(&mut ev, rep + 2 * j * WORK, EventKind::Enter { region: R_WORK });
            push(&mut ev, rep + (2 * j + 1) * WORK, EventKind::Exit { region: R_WORK });
        }
        let p2p = rep + 2 * cfg.inner * WORK;
        let tag = (k % 1_000) as i32;
        if rank % 2 == 0 && rank + 1 < n {
            // Sender: posts late relative to the neighbor's receive.
            let post = p2p + 100 + SEND_LATENESS + (rank as u64 % 4) * 500;
            push(&mut ev, p2p + 100, EventKind::Enter { region: R_SEND });
            push(
                &mut ev,
                post,
                EventKind::Send {
                    to: rank + 1,
                    comm: 0,
                    tag,
                    bytes: 1024,
                },
            );
            push(&mut ev, post + 100, EventKind::Exit { region: R_SEND });
        } else if rank % 2 == 1 {
            // Receiver: posts early, completes after the late send.
            let posted = p2p + 50;
            let sender_post = p2p + 100 + SEND_LATENESS + ((rank - 1) as u64 % 4) * 500;
            let complete = sender_post + 300;
            push(&mut ev, posted, EventKind::Enter { region: R_RECV });
            push(
                &mut ev,
                complete,
                EventKind::Recv {
                    from: rank - 1,
                    comm: 0,
                    tag,
                    bytes: 1024,
                    posted: t(posted),
                },
            );
            push(&mut ev, complete + 100, EventKind::Exit { region: R_RECV });
        }
        if k % 8 == 0 {
            let q = p2p + P2P_SLOT;
            // Staggered barrier: later ranks arrive later, all leave together.
            let arrive = q + rank as u64 * BARRIER_STAGGER;
            let done = q + (n as u64 - 1) * BARRIER_STAGGER + 500;
            push(&mut ev, arrive, EventKind::Enter { region: R_BARRIER });
            push(
                &mut ev,
                done,
                EventKind::CollEnd {
                    op: CollOp::Barrier,
                    comm: 0,
                    root: None,
                    seq: 2 * (k / 8),
                    bytes: 0,
                    entered: t(arrive),
                },
            );
            push(&mut ev, done + 100, EventKind::Exit { region: R_BARRIER });
            // Late broadcast: non-roots arrive promptly, the root arrives late.
            let x = done + 300;
            let enter = if rank == 0 { x + ROOT_LATENESS } else { x };
            let end = x + ROOT_LATENESS + 1_000;
            push(&mut ev, enter, EventKind::Enter { region: R_BCAST });
            push(
                &mut ev,
                end,
                EventKind::CollEnd {
                    op: CollOp::Bcast,
                    comm: 0,
                    root: Some(0),
                    seq: 2 * (k / 8) + 1,
                    bytes: 4096,
                    entered: t(enter),
                },
            );
            push(&mut ev, end + 100, EventKind::Exit { region: R_BCAST });
        }
    }
    let end = body + cfg.reps * cfg.rep_slot() + 1_000;
    push(&mut ev, end, EventKind::Exit { region: R_MAIN });
    LocationTrace {
        location: LocationId { rank, thread: 0 },
        events: ev,
    }
}

/// Generate the stress trace block by block and write it as ATSB to `w`.
/// Peak memory is one rank's event vector, independent of the file size.
/// Returns the bytes written.
pub fn write_stress(cfg: &StressConfig, w: impl Write) -> Result<u64, TraceIoError> {
    let regions = stress_regions();
    let comms = stress_comms(cfg.ranks);
    let mut bw = BlockWriter::new(w, &regions, &comms, cfg.ranks as u64)?;
    for rank in 0..cfg.ranks {
        bw.write_location(&stress_location(cfg, rank))?;
    }
    bw.finish()
}

/// This process's peak resident set (`VmHWM`) in bytes, if the platform
/// exposes it. Monotone over the process lifetime: to attribute a peak
/// to a phase, sample after each phase in ascending-cost order.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_trace::Trace;

    fn small() -> StressConfig {
        StressConfig {
            ranks: 5,
            reps: 9,
            inner: 4,
        }
    }

    fn materialize(cfg: &StressConfig) -> Trace {
        Trace::with_comms(
            stress_regions(),
            stress_comms(cfg.ranks),
            (0..cfg.ranks).map(|r| stress_location(cfg, r)).collect(),
        )
    }

    #[test]
    fn stress_trace_is_wellformed_and_counts_match() {
        let cfg = small();
        let trace = materialize(&cfg);
        assert!(ats_trace::check_wellformed(&trace).is_empty());
        assert_eq!(trace.num_events() as u64, cfg.events_total());
    }

    #[test]
    fn stress_file_round_trips_through_the_block_codec() {
        let cfg = small();
        let mut buf = Vec::new();
        let bytes = write_stress(&cfg, &mut buf).unwrap();
        assert_eq!(bytes, buf.len() as u64);
        let decoded = ats_trace::binfmt::decode(&buf).unwrap();
        assert_eq!(decoded.locations, materialize(&cfg).locations);
    }

    #[test]
    fn stress_trace_carries_the_planted_properties() {
        use ats_analyzer::{analyze, AnalyzerConfig};
        let trace = materialize(&StressConfig {
            ranks: 8,
            reps: 16,
            inner: 2,
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        for property in ["LateSender", "WaitAtBarrier", "LateBroadcast"] {
            assert!(
                report.severity_of(property) > 0.0,
                "missing planted {property}"
            );
        }
    }

    #[test]
    fn sized_config_lands_near_the_requested_size() {
        let cfg = StressConfig::sized_mb(16, 2);
        let mut buf = Vec::new();
        write_stress(&cfg, &mut buf).unwrap();
        let mb = buf.len() as f64 / 1e6;
        assert!(
            (1.0..4.0).contains(&mb),
            "asked for 2 MB, got {mb:.2} MB ({cfg:?})"
        );
    }
}
