//! # ats-bench
//!
//! Regeneration of every figure in the ATS paper's evaluation, plus the
//! extended experiments DESIGN.md defines. The paper contains no numeric
//! tables; its evaluation artifacts are four figures:
//!
//! | id   | paper artifact | binary |
//! |------|----------------|--------|
//! | F3.2 | Vampir timelines of two single-property runs of `imbalance_at_mpi_barrier` with different parameters | `figure32` |
//! | F3.3 | timeline of a composite program calling all MPI property functions | `figure33` |
//! | F3.4 | timeline of two communicators running different property sets in parallel | `figure34` |
//! | F3.5 | EXPERT's analysis of the F3.4 program (property/call/location panes) | `figure35` |
//!
//! Extended experiments: `sweep_positive` (severity-tracking curves),
//! `sweep_negative` (false-positive scan), `overhead` (instrumentation
//! cost), `catalog` (the property-function inventory).
//!
//! Criterion benches (`cargo bench -p ats-bench`) time the suite's own
//! machinery: substrate operation costs, property-program construction,
//! and analysis throughput.

pub mod cli;
pub mod stress;

use ats_core::CompositeParams;
use ats_harness::registry::{run_composite_all_mpi, run_composite_two_comms};
use ats_harness::RunOpts;
use ats_runtime::VDur;
use ats_trace::{Trace, TraceFormat};

/// Shared configuration for the figure binaries: the paper's programs at
/// reproduction scale.
pub fn paper_opts(nprocs: usize) -> RunOpts {
    // Realistic model + visible init/finalize, as in the Vampir shots.
    RunOpts::default().procs(nprocs).realistic()
}

/// A figure-binary [`ats_harness::Session`]: [`paper_opts`] as a builder,
/// so the binaries inject observability before building.
pub fn paper_session(nprocs: usize) -> ats_harness::SessionBuilder {
    ats_harness::Session::builder().procs(nprocs).realistic()
}

/// The Figure 3.2 runs: `imbalance_at_mpi_barrier` under two different
/// parameter sets (distribution shape and severity), as the paper's two
/// timelines show. Returns `(label, trace)` pairs.
pub fn figure32_runs(nprocs: usize) -> Vec<(String, Trace)> {
    figure32_runs_with(&paper_opts(nprocs))
}

/// [`figure32_runs`] under explicit run options (a session's, usually).
pub fn figure32_runs_with(opts: &RunOpts) -> Vec<(String, Trace)> {
    use ats_harness::{run_single, ParamValues};
    let spec = ats_core::catalog::find("imbalance_at_mpi_barrier").expect("in catalog");
    let configs = [
        ("block2 low severity", "df=block2:low=0.01,high=0.03", "r=4"),
        (
            "linear high severity",
            "df=linear:low=0.01,high=0.09",
            "r=4",
        ),
    ];
    configs
        .iter()
        .map(|(label, df, r)| {
            let params = ParamValues::from_args(spec, &[df, r]).expect("valid params");
            let trace = run_single("imbalance_at_mpi_barrier", &params, opts).expect("runnable");
            ((*label).to_owned(), trace)
        })
        .collect()
}

/// The Figure 3.3 program: all MPI property functions in sequence.
pub fn figure33_trace(nprocs: usize) -> Trace {
    figure33_trace_with(&paper_opts(nprocs))
}

/// [`figure33_trace`] under explicit run options (a session's, usually).
pub fn figure33_trace_with(opts: &RunOpts) -> Trace {
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    run_composite_all_mpi(&params, opts)
}

/// The Figure 3.4/3.5 program: two communicators running different
/// property sets in parallel (16 ranks, as in the paper's screenshots).
pub fn figure34_trace(nprocs: usize) -> Trace {
    figure34_trace_with(&paper_opts(nprocs))
}

/// [`figure34_trace`] under explicit run options (a session's, usually).
pub fn figure34_trace_with(opts: &RunOpts) -> Trace {
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    run_composite_two_comms(&params, opts)
}

/// Default per-step work used in overhead measurements.
pub const OVERHEAD_STEP: VDur = VDur(2_000_000); // 2ms

/// Split raw CLI arguments into positionals and `--name value` flag pairs.
///
/// The figure and sweep binaries take a couple of positional arguments
/// (`nprocs`, `jobs`) plus optional flags (`--svg DIR`, `--trace-dir DIR`,
/// `--format FMT`); this keeps their hand-rolled parsing uniform. A flag
/// without a value is a usage error (exit code 2).
pub fn split_flags(args: Vec<String>) -> (Vec<String>, Vec<(String, String)>) {
    let mut positionals = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.strip_prefix("--") {
            Some(name) => {
                let value = it.next().unwrap_or_else(|| {
                    eprintln!("flag --{name} needs a value");
                    std::process::exit(2);
                });
                flags.push((name.to_owned(), value));
            }
            None => positionals.push(arg),
        }
    }
    (positionals, flags)
}

/// Look up a flag by name in the pairs produced by [`split_flags`].
pub fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// Resolve the `--format` flag: absent means the artifact default
/// ([`TraceFormat::Binary`]); an unknown value is a usage error.
pub fn format_flag(flags: &[(String, String)]) -> TraceFormat {
    match flag(flags, "format") {
        None => TraceFormat::default(),
        Some(v) => match v.parse() {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
    }
}

/// Write `trace` as `dir/stem.{ext}` in `format` and return the path.
/// I/O failures are fatal: an artifact run that cannot save its artifacts
/// should fail loudly, not half-succeed.
pub fn write_trace_artifact(trace: &Trace, dir: &str, stem: &str, format: TraceFormat) -> String {
    let path = format!("{dir}/{stem}.{}", format.extension());
    let file = std::fs::File::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    format
        .write(trace, std::io::BufWriter::new(file))
        .unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_traces_are_wellformed() {
        for (_, t) in figure32_runs(8) {
            assert!(ats_trace::check_wellformed(&t).is_empty());
        }
        assert!(ats_trace::check_wellformed(&figure33_trace(8)).is_empty());
        assert!(ats_trace::check_wellformed(&figure34_trace(16)).is_empty());
    }

    #[test]
    fn figure34_uses_three_communicators() {
        let t = figure34_trace(8);
        // world + two halves.
        assert!(t.comms.len() >= 3, "comms: {:?}", t.comms);
    }

    #[test]
    fn split_flags_separates_positionals_and_pairs() {
        let (pos, flags) = split_flags(vec![
            "8".to_owned(),
            "--svg".to_owned(),
            "out".to_owned(),
            "extrawork=0.02".to_owned(),
        ]);
        assert_eq!(pos, ["8", "extrawork=0.02"]);
        assert_eq!(flag(&flags, "svg"), Some("out"));
        assert_eq!(flag(&flags, "format"), None);
        assert_eq!(format_flag(&flags), TraceFormat::Binary);
        let (_, flags) = split_flags(vec!["--format".to_owned(), "jsonl".to_owned()]);
        assert_eq!(format_flag(&flags), TraceFormat::Jsonl);
    }

    #[test]
    fn trace_artifacts_round_trip_in_both_formats() {
        let trace = figure34_trace(4);
        let dir = std::env::temp_dir().join(format!("ats-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_s = dir.to_str().unwrap();
        for format in [TraceFormat::Binary, TraceFormat::Jsonl] {
            let path = write_trace_artifact(&trace, dir_s, "figure34", format);
            assert!(path.ends_with(format.extension()), "{path}");
            let loaded = ats_trace::io::read_path(&path).unwrap();
            assert_eq!(loaded.locations, trace.locations, "{format}");
            std::fs::remove_file(&path).ok();
        }
        std::fs::remove_dir(&dir).ok();
    }
}
