//! # ats-bench
//!
//! Regeneration of every figure in the ATS paper's evaluation, plus the
//! extended experiments DESIGN.md defines. The paper contains no numeric
//! tables; its evaluation artifacts are four figures:
//!
//! | id   | paper artifact | binary |
//! |------|----------------|--------|
//! | F3.2 | Vampir timelines of two single-property runs of `imbalance_at_mpi_barrier` with different parameters | `figure32` |
//! | F3.3 | timeline of a composite program calling all MPI property functions | `figure33` |
//! | F3.4 | timeline of two communicators running different property sets in parallel | `figure34` |
//! | F3.5 | EXPERT's analysis of the F3.4 program (property/call/location panes) | `figure35` |
//!
//! Extended experiments: `sweep_positive` (severity-tracking curves),
//! `sweep_negative` (false-positive scan), `overhead` (instrumentation
//! cost), `catalog` (the property-function inventory).
//!
//! Criterion benches (`cargo bench -p ats-bench`) time the suite's own
//! machinery: substrate operation costs, property-program construction,
//! and analysis throughput.

use ats_core::CompositeParams;
use ats_harness::registry::{run_composite_all_mpi, run_composite_two_comms};
use ats_harness::RunOpts;
use ats_runtime::VDur;
use ats_trace::Trace;

/// Shared configuration for the figure binaries: the paper's programs at
/// reproduction scale.
pub fn paper_opts(nprocs: usize) -> RunOpts {
    // Realistic model + visible init/finalize, as in the Vampir shots.
    RunOpts::default().procs(nprocs).realistic()
}

/// The Figure 3.2 runs: `imbalance_at_mpi_barrier` under two different
/// parameter sets (distribution shape and severity), as the paper's two
/// timelines show. Returns `(label, trace)` pairs.
pub fn figure32_runs(nprocs: usize) -> Vec<(String, Trace)> {
    use ats_harness::{run_single, ParamValues};
    let spec = ats_core::catalog::find("imbalance_at_mpi_barrier").expect("in catalog");
    let configs = [
        ("block2 low severity", "df=block2:low=0.01,high=0.03", "r=4"),
        (
            "linear high severity",
            "df=linear:low=0.01,high=0.09",
            "r=4",
        ),
    ];
    configs
        .iter()
        .map(|(label, df, r)| {
            let params = ParamValues::from_args(spec, &[df, r]).expect("valid params");
            let trace = run_single("imbalance_at_mpi_barrier", &params, &paper_opts(nprocs))
                .expect("runnable");
            ((*label).to_owned(), trace)
        })
        .collect()
}

/// The Figure 3.3 program: all MPI property functions in sequence.
pub fn figure33_trace(nprocs: usize) -> Trace {
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    run_composite_all_mpi(&params, &paper_opts(nprocs))
}

/// The Figure 3.4/3.5 program: two communicators running different
/// property sets in parallel (16 ranks, as in the paper's screenshots).
pub fn figure34_trace(nprocs: usize) -> Trace {
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    run_composite_two_comms(&params, &paper_opts(nprocs))
}

/// Default per-step work used in overhead measurements.
pub const OVERHEAD_STEP: VDur = VDur(2_000_000); // 2ms

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_traces_are_wellformed() {
        for (_, t) in figure32_runs(8) {
            assert!(ats_trace::check_wellformed(&t).is_empty());
        }
        assert!(ats_trace::check_wellformed(&figure33_trace(8)).is_empty());
        assert!(ats_trace::check_wellformed(&figure34_trace(16)).is_empty());
    }

    #[test]
    fn figure34_uses_three_communicators() {
        let t = figure34_trace(8);
        // world + two halves.
        assert!(t.comms.len() >= 3, "comms: {:?}", t.comms);
    }
}
