//! Shared command-line surface for the figure/sweep/fuzz binaries.
//!
//! Every artifact binary used to hand-roll the same `--format` /
//! `--trace-dir` / `--save` / `--jobs` parsing; [`CommonArgs`] parses them
//! once, adds the observability flags (`--metrics PATH`, `--manifest`) in
//! one place, and hands back a configured
//! [`Session`](ats_harness::Session) so a binary that wants metrics gets
//! them without touching any subsystem config itself.

use ats_harness::{Session, SessionBuilder};
use ats_obs::ObsConfig;
use ats_trace::TraceFormat;
use std::path::Path;

/// Flags that take no value. Everything else spelled `--name` consumes
/// the next argument as its value.
const BOOL_FLAGS: &[&str] = &["manifest", "replay", "no-shrink"];

/// The parsed common command line: positionals plus the flag set shared
/// by the artifact binaries.
#[derive(Debug, Clone, Default)]
pub struct CommonArgs {
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
    /// `--name value` flags, in order.
    flags: Vec<(String, String)>,
    /// Valueless flags present on the command line.
    bools: Vec<String>,
}

impl CommonArgs {
    /// Parse the process's own arguments.
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parse an explicit argument vector. A value flag at the end of the
    /// line without its value is a usage error (exit code 2).
    pub fn from_vec(args: Vec<String>) -> Self {
        let mut out = CommonArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.strip_prefix("--") {
                Some(name) if BOOL_FLAGS.contains(&name) => {
                    out.bools.push(name.to_owned());
                }
                Some(name) => {
                    let value = it.next().unwrap_or_else(|| {
                        eprintln!("flag --{name} needs a value");
                        std::process::exit(2);
                    });
                    out.flags.push((name.to_owned(), value));
                }
                None => out.positionals.push(arg),
            }
        }
        out
    }

    /// Look up a value flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Is a boolean flag present?
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    /// Positional `idx` parsed, or `default`.
    pub fn positional_or<T: std::str::FromStr>(&self, idx: usize, default: T) -> T {
        self.positionals
            .get(idx)
            .and_then(|a| a.parse().ok())
            .unwrap_or(default)
    }

    /// The `--format` flag: absent means the artifact default (ATSB
    /// binary); an unknown value is a usage error.
    pub fn format(&self) -> TraceFormat {
        match self.flag("format") {
            None => TraceFormat::default(),
            Some(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
        }
    }

    /// The `--backend {event,thread}` flag: absent means the session
    /// default (discrete-event); an unknown value is a usage error.
    pub fn backend(&self) -> Option<ats_runtime::SimBackend> {
        self.flag("backend").map(|v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
    }

    /// The `--cache {off,ro,rw}` flag: absent means no result caching; an
    /// unknown value is a usage error.
    pub fn cache_mode(&self) -> ats_store::CacheMode {
        match self.flag("cache") {
            None => ats_store::CacheMode::Off,
            Some(v) => v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            }),
        }
    }

    /// The `--cache-dir DIR` flag: where the artifact store lives
    /// (default `artifacts/store`).
    pub fn cache_dir(&self) -> &str {
        self.flag("cache-dir").unwrap_or(ats_store::DEFAULT_DIR)
    }

    /// The `--trace-dir DIR` flag.
    pub fn trace_dir(&self) -> Option<&str> {
        self.flag("trace-dir")
    }

    /// The `--svg DIR` flag.
    pub fn svg_dir(&self) -> Option<&str> {
        self.flag("svg")
    }

    /// The `--save FILE` flag.
    pub fn save(&self) -> Option<&str> {
        self.flag("save")
    }

    /// Did the command line ask for any observability output?
    pub fn obs_requested(&self) -> bool {
        self.flag("metrics").is_some() || self.has("manifest")
    }

    /// The observability configuration the flags imply: the process-wide
    /// registry when `--metrics`/`--manifest` is present (so free-function
    /// sites like the trace codec record too), otherwise fully off.
    pub fn obs_config(&self) -> ObsConfig {
        if self.obs_requested() {
            ObsConfig::on()
        } else {
            ObsConfig::off()
        }
    }

    /// Finish `builder` into a [`Session`] with this command line's
    /// observability configuration, result-cache policy (`--cache`,
    /// `--cache-dir`) — and, when `--backend` is given, the
    /// rank-execution backend — injected.
    pub fn session(&self, builder: SessionBuilder) -> Session {
        let builder = match self.backend() {
            Some(b) => builder.backend(b),
            None => builder,
        };
        // Only apply cache flags that are actually present, so a binary
        // may pre-configure caching (as `store_bench` does) without the
        // absent `--cache` flag resetting it to off.
        let builder = match self.flag("cache") {
            Some(_) => builder.cache(self.cache_mode()),
            None => builder,
        };
        let builder = match self.flag("cache-dir") {
            Some(dir) => builder.cache_dir(dir),
            None => builder,
        };
        builder.obs(self.obs_config()).build()
    }

    /// Emit the requested observability outputs: Prometheus text to the
    /// `--metrics` path (`-` = stdout), and — under `--manifest` — a JSON
    /// run manifest beside every path in `artifacts`, or as
    /// `<label>.manifest.json` in the working directory when the run
    /// produced no artifacts. Failures warn; they never fail the run the
    /// metrics describe.
    pub fn emit(&self, session: &Session, label: &str, artifacts: &[&Path]) {
        if let Some(path) = self.flag("metrics") {
            match session.prometheus() {
                Some(text) if path == "-" => print!("{text}"),
                Some(text) => match std::fs::write(path, text) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("warning: could not write {path}: {e}"),
                },
                None => {}
            }
        }
        if self.has("manifest") {
            let Some(manifest) = session.manifest(label) else {
                return;
            };
            if artifacts.is_empty() {
                let path = format!("{label}.manifest.json");
                match std::fs::write(&path, manifest.to_json_pretty()) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("warning: could not write {path}: {e}"),
                }
            } else {
                for artifact in artifacts {
                    match manifest.write_beside(artifact) {
                        Ok(path) => println!("wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("warning: no manifest for {}: {e}", artifact.display())
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &[&str]) -> CommonArgs {
        CommonArgs::from_vec(line.iter().map(|s| (*s).to_owned()).collect())
    }

    #[test]
    fn parses_positionals_value_flags_and_bool_flags() {
        let a = args(&[
            "8",
            "--trace-dir",
            "out",
            "extrawork=0.02",
            "--manifest",
            "--format",
            "jsonl",
        ]);
        assert_eq!(a.positionals, ["8", "extrawork=0.02"]);
        assert_eq!(a.positional_or(0, 0usize), 8);
        assert_eq!(a.positional_or(5, 3usize), 3);
        assert_eq!(a.trace_dir(), Some("out"));
        assert!(a.has("manifest"));
        assert!(!a.has("replay"));
        assert_eq!(a.format(), TraceFormat::Jsonl);
    }

    #[test]
    fn backend_flag_selects_the_thread_backend() {
        use ats_runtime::SimBackend;
        assert_eq!(args(&["8"]).backend(), None);
        assert_eq!(
            args(&["--backend", "thread"]).backend(),
            Some(SimBackend::Thread)
        );
        let session = args(&["--backend", "thread"]).session(Session::builder().procs(2));
        assert_eq!(session.opts().backend, SimBackend::Thread);
    }

    #[test]
    fn obs_is_off_unless_asked_for() {
        assert!(!args(&["8"]).obs_requested());
        assert!(args(&["--manifest"]).obs_requested());
        assert!(args(&["--metrics", "-"]).obs_requested());
        let session = args(&["8"]).session(Session::builder().procs(2));
        assert!(session.obs().is_none());
    }

    #[test]
    fn session_with_manifest_flag_records() {
        let a = args(&["--manifest"]);
        let session = a.session(Session::builder().procs(2));
        assert!(session.obs().is_some());
    }
}
