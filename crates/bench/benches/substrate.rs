//! Criterion microbenchmarks of the ATS-RS machinery itself: substrate
//! operation throughput, trace recording, and analysis scaling. These are
//! the ablation numbers DESIGN.md calls out (virtual-time execution must
//! stay cheap enough that suite runs are interactive).

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_core::{properties::mpi_coll, properties::mpi_p2p, BaseComm, Distr};
use ats_mpi::SimConfig;
use ats_omp::{parallel, run_omp, OmpConfig};
use ats_runtime::{MachineModel, SplitMix64, VDur};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cfg(n: usize) -> SimConfig {
    SimConfig {
        nprocs: n,
        model: MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    }
}

fn rng_throughput(c: &mut Criterion) {
    c.bench_function("splitmix64_1k_draws", |b| {
        let mut g = SplitMix64::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(g.next_u64());
            }
            black_box(acc)
        })
    });
}

fn barrier_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpi_barrier_100x");
    g.sample_size(10);
    for procs in [2, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter(|| {
                ats_mpi::run(cfg(procs), |p| {
                    let c = p.comm_world();
                    for _ in 0..100 {
                        p.barrier(&c);
                    }
                })
            })
        });
    }
    g.finish();
}

fn p2p_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p_pingpong_1000x");
    g.sample_size(10);
    g.bench_function("eager_2k", |b| {
        b.iter(|| {
            ats_mpi::run(cfg(2), |p| {
                let c = p.comm_world();
                let buf = vec![0u8; 2048];
                for i in 0..1000 {
                    if p.rank() == 0 {
                        p.send(&buf, 1, i, &c);
                        let _ = p.recv(1, i, &c);
                    } else {
                        let _ = p.recv(0, i, &c);
                        p.send(&buf, 0, i, &c);
                    }
                }
            })
        })
    });
    g.finish();
}

fn omp_fork_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("omp_fork_join_50x");
    g.sample_size(10);
    for threads in [2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                run_omp(
                    OmpConfig {
                        model: MachineModel::zero(),
                        ..Default::default()
                    },
                    |m| {
                        for _ in 0..50 {
                            parallel(m, t, |th| th.do_work(VDur::from_micros(1)));
                        }
                    },
                )
            })
        });
    }
    g.finish();
}

fn analyzer_scaling(c: &mut Criterion) {
    // Traces of growing event counts from repeated property bodies.
    let mut g = c.benchmark_group("analyzer_events");
    g.sample_size(10);
    for reps in [10usize, 50, 200] {
        let trace = ats_mpi::run(cfg(8), move |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.0001, 0.0002, reps, &c);
            mpi_coll::imbalance_at_mpi_barrier(p, &Distr::cyclic2(0.0001, 0.0003), reps, &c);
        });
        let events = trace.num_events();
        g.bench_with_input(BenchmarkId::from_parameter(events), &trace, |b, trace| {
            b.iter(|| black_box(analyze(trace, &AnalyzerConfig::default())))
        });
    }
    g.finish();
}

fn trace_io(c: &mut Criterion) {
    let trace = ats_mpi::run(cfg(8), |p| {
        let c = p.comm_world();
        mpi_coll::imbalance_at_mpi_barrier(p, &Distr::linear(0.0001, 0.0005), 50, &c);
    });
    let mut g = c.benchmark_group("trace_io");
    g.sample_size(10);
    g.bench_function("jsonl_write", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            ats_trace::io::write_jsonl(&trace, &mut buf).expect("serialize");
            black_box(buf)
        })
    });
    let mut serialized = Vec::new();
    ats_trace::io::write_jsonl(&trace, &mut serialized).expect("serialize");
    g.bench_function("jsonl_read", |b| {
        b.iter(|| black_box(ats_trace::io::read_jsonl(serialized.as_slice()).expect("parse")))
    });
    g.finish();
}

fn real_work_calibration(c: &mut Criterion) {
    use ats_runtime::{WorkEngine, WorkMode};
    let rate = ats_runtime::work::calibrate();
    c.bench_function("real_do_work_1ms", |b| {
        let mut engine = WorkEngine::new(WorkMode::Real, 7, 0);
        engine.set_calibration(rate);
        b.iter(|| engine.do_work(VDur::from_millis(1)))
    });
}

criterion_group!(
    substrate,
    rng_throughput,
    barrier_scaling,
    p2p_throughput,
    omp_fork_join,
    analyzer_scaling,
    trace_io,
    real_work_calibration
);
criterion_main!(substrate);
