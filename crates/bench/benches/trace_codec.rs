//! Criterion benchmark of the on-disk trace codecs: ATSB columnar binary
//! vs JSONL encode/decode throughput on the figure-3.4 composite trace.
//! Tracks the ISSUE-2 tentpole — artifact I/O was JSONL-only and
//! allocation-heavy; a regression in the binary path would show here
//! first. `trace_bench` (a bin, run in CI) records the same comparison as
//! `BENCH_trace.json`.

use ats_trace::{binfmt, io};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn codec_throughput(c: &mut Criterion) {
    let trace = ats_bench::figure34_trace(8);
    let mut jsonl = Vec::new();
    io::write_jsonl(&trace, &mut jsonl).expect("jsonl encode");
    let binary = binfmt::encode(&trace);

    let mut g = c.benchmark_group("trace_codec");
    g.throughput(Throughput::Bytes(jsonl.len() as u64));
    g.bench_function("encode_jsonl", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            io::write_jsonl(black_box(&trace), &mut buf).unwrap();
            black_box(buf)
        })
    });
    g.bench_function("decode_jsonl", |b| {
        b.iter(|| black_box(io::read_jsonl(black_box(jsonl.as_slice())).unwrap()))
    });
    g.throughput(Throughput::Bytes(binary.len() as u64));
    g.bench_function("encode_binary", |b| {
        b.iter(|| black_box(binfmt::encode(black_box(&trace))))
    });
    g.bench_function("decode_binary", |b| {
        b.iter(|| black_box(binfmt::decode(black_box(&binary)).unwrap()))
    });
    g.finish();
}

fn auto_sniff(c: &mut Criterion) {
    let trace = ats_bench::figure34_trace(8);
    let binary = binfmt::encode(&trace);
    let mut g = c.benchmark_group("trace_read_auto");
    g.throughput(Throughput::Bytes(binary.len() as u64));
    g.bench_function("binary", |b| {
        b.iter(|| black_box(io::read_auto(black_box(&binary[..])).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, codec_throughput, auto_sniff);
criterion_main!(benches);
