//! Criterion benchmark of the parallel experiment-execution engine:
//! sweep throughput (configurations/second) as the worker count grows.
//! Tracks the ISSUE-1 tentpole — serial sweeps were the suite's
//! wall-clock bottleneck; this is where a regression would show first.

use ats_harness::experiment::{Experiment, Sweep};
use ats_harness::{pool, RunOpts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// The E-pos shape in miniature: a severity × repetition sweep of
/// `late_sender` at 4 ranks — 8 configurations per run.
fn sweep(jobs: usize) -> Experiment {
    Experiment::new("late_sender")
        .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02, 0.04]))
        .sweep(Sweep::counts("r", [1, 2]))
        .opts(RunOpts::default().procs(4).jobs(jobs))
}

fn sweep_throughput(c: &mut Criterion) {
    let configs = 8u64;
    let mut g = c.benchmark_group("sweep_configs");
    g.sample_size(10);
    g.throughput(Throughput::Elements(configs));
    let mut jobs_axis = vec![1usize, 4, pool::auto_jobs().max(4)];
    jobs_axis.dedup();
    for jobs in jobs_axis {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let (rows, stats) = sweep(jobs).run_with_stats().unwrap();
                assert_eq!(rows.len(), configs as usize);
                black_box((rows, stats))
            })
        });
    }
    g.finish();
}

fn collective_sweep_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_barrier_grid");
    g.sample_size(10);
    g.throughput(Throughput::Elements(6));
    for jobs in [1usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let (rows, _) = Experiment::new("imbalance_at_mpi_barrier")
                    .procs_grid([2, 4, 8])
                    .sweep(Sweep::counts("r", [1, 2]))
                    .opts(RunOpts::default().jobs(jobs))
                    .run_with_stats()
                    .unwrap();
                black_box(rows)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, sweep_throughput, collective_sweep_throughput);
criterion_main!(benches);
