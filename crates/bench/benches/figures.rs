//! Criterion benches regenerating the paper's figure workloads.
//!
//! One group per evaluation artifact (Figures 3.2-3.5): each bench
//! constructs the figure's synthetic program, executes it on the
//! virtual-time substrate, and (for Figure 3.5) runs the automatic
//! analysis. Timing these end-to-end runs tracks the suite's own cost —
//! how long it takes a tool developer to regenerate the paper.

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_bench::{figure32_runs, figure33_trace, figure34_trace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig32_single_property(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure32");
    g.sample_size(10);
    g.bench_function("two_parameterizations_8_ranks", |b| {
        b.iter(|| black_box(figure32_runs(8)))
    });
    g.finish();
}

fn fig33_composite(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure33");
    g.sample_size(10);
    g.bench_function("all_mpi_properties_8_ranks", |b| {
        b.iter(|| black_box(figure33_trace(8)))
    });
    g.finish();
}

fn fig34_two_comms(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure34");
    g.sample_size(10);
    g.bench_function("two_communicators_16_ranks", |b| {
        b.iter(|| black_box(figure34_trace(16)))
    });
    g.finish();
}

fn fig35_analysis(c: &mut Criterion) {
    let trace = figure34_trace(16);
    let mut g = c.benchmark_group("figure35");
    g.sample_size(10);
    g.bench_function("expert_analysis_of_figure34", |b| {
        b.iter(|| black_box(analyze(&trace, &AnalyzerConfig::default())))
    });
    g.bench_function("timeline_render_figure34", |b| {
        b.iter(|| black_box(ats_harness::timeline::render_text(&trace, 120)))
    });
    g.finish();
}

fn sweeps(c: &mut Criterion) {
    use ats_harness::experiment::{Experiment, Sweep};
    use ats_harness::RunOpts;
    let mut g = c.benchmark_group("correctness_sweeps");
    g.sample_size(10);
    g.bench_function("late_sender_severity_sweep", |b| {
        b.iter(|| {
            Experiment::new("late_sender")
                .sweep(Sweep::seconds("extrawork", [0.01, 0.02, 0.04]))
                .opts(RunOpts::default().procs(4))
                .run()
                .expect("runnable")
        })
    });
    g.bench_function("negative_suite_scan", |b| {
        b.iter(|| {
            Experiment::new("balanced_mpi_barrier")
                .sweep(Sweep::seconds("work", [0.005, 0.01]))
                .opts(RunOpts::default().procs(4))
                .run()
                .expect("runnable")
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig32_single_property,
    fig33_composite,
    fig34_two_comms,
    fig35_analysis,
    sweeps
);
criterion_main!(figures);
