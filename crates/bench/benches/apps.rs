//! Criterion benches over the application tier (paper ch. 4): end-to-end
//! cost of running + analyzing each mini-app in its pathological
//! configuration — the suite's "applicability" workload.

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_apps as apps;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("applications");
    g.sample_size(10);
    g.bench_function("jacobi_imbalanced_run_and_analyze", |b| {
        b.iter(|| {
            let (trace, _) = apps::jacobi::run(&apps::jacobi::JacobiConfig::imbalanced(4));
            black_box(analyze(&trace, &AnalyzerConfig::default()))
        })
    });
    g.bench_function("heat2d_refined_run_and_analyze", |b| {
        b.iter(|| {
            let (trace, _) = apps::heat2d::run(&apps::heat2d::Heat2dConfig::refined_corner(4));
            black_box(analyze(&trace, &AnalyzerConfig::default()))
        })
    });
    g.bench_function("taskfarm_starved_run_and_analyze", |b| {
        b.iter(|| {
            let (trace, _) = apps::taskfarm::run(&apps::taskfarm::FarmConfig::starved(4));
            black_box(analyze(&trace, &AnalyzerConfig::default()))
        })
    });
    g.bench_function("transpose_skewed_run_and_analyze", |b| {
        b.iter(|| {
            let (trace, _) = apps::transpose::run(&apps::transpose::TransposeConfig::skewed(4));
            black_box(analyze(&trace, &AnalyzerConfig::default()))
        })
    });
    g.bench_function("hybrid_stencil_skewed_run_and_analyze", |b| {
        b.iter(|| {
            let (trace, _) =
                apps::hybrid_stencil::run(&apps::hybrid_stencil::HybridConfig::skewed(2, 4));
            black_box(analyze(&trace, &AnalyzerConfig::default()))
        })
    });
    g.finish();
}

criterion_group!(app_benches, bench_apps);
criterion_main!(app_benches);
