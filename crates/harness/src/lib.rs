//! # ats-harness
//!
//! Test-program generation, experiment management, rendering and
//! validation — the outer ring of the ATS framework.
//!
//! * [`params`] / [`registry`]: typed command-line-style parameters and
//!   the dispatcher that turns any catalog entry into an executed test
//!   program (the runtime half of the paper's PDT-based generator);
//! * [`generate`]: the source-code half — emits standalone Rust `main`s
//!   for single-property test programs from the catalog signatures;
//! * [`experiment`]: parameter sweeps and result tables (the ZENTURIO
//!   role in the paper's tooling sketch), executed concurrently on the
//!   [`pool`] worker pool with an oversubscription guard and
//!   deterministic (combo-ordered) results;
//! * [`cache`]: the incremental half of the experiment engine — stable
//!   cache keys over everything that determines a result (and nothing
//!   that merely schedules it), so sweeps replay known configurations
//!   from the [`ats_store`] artifact store and execute only new ones;
//! * [`timeline`]: Vampir-style timeline rendering (text and SVG) used to
//!   regenerate the paper's Figures 3.2–3.4;
//! * [`validation`]: the semantics-preservation procedure from the
//!   paper's Chapter 2 — run kernels with and without instrumentation,
//!   compare results, report overhead;
//! * [`resources`]: the paper's chapter-2 suite collection as data;
//! * [`correctness`]: positive/negative correctness scoring of an
//!   analyzer against the catalog's expectations.

pub mod cache;
pub mod correctness;
pub mod experiment;
pub mod generate;
pub mod params;
pub mod pool;
pub mod profile;
pub mod registry;
pub mod resources;
pub mod session;
pub mod timeline;
pub mod validation;

pub use correctness::{score_negative, score_positive, SuiteSummary, Verdict};
pub use experiment::{Experiment, ExperimentRow, ExperimentStats, Sweep};
pub use params::{ParamValue, ParamValues};
pub use registry::{run_in_comm, run_single, spec_of, RunError, RunOpts};
pub use session::{Session, SessionBuilder};
