//! Flat-profile rendering: the classic "time per region" table every
//! profiler prints, derived from [`ats_trace::TraceStats`]. Used by the
//! `ats` CLI and by EXPERIMENTS.md snippets; pattern analysis builds on
//! top of this view, it does not replace it.

use ats_trace::{Trace, TraceStats};
use std::fmt::Write as _;

/// Render an aggregated flat profile (all locations combined), sorted by
/// exclusive time, with per-region visit counts and percentages.
pub fn render_profile(trace: &Trace) -> String {
    let stats = TraceStats::compute(trace);
    let total = trace.total_alloc_time();
    let mut rows: Vec<(String, u64, f64, f64)> = (0..trace.regions.len())
        .map(|i| {
            let id = ats_trace::RegionId(i as u32);
            let p = stats.region_total(id);
            (
                trace.region_name(id).to_owned(),
                p.visits,
                p.exclusive.as_secs(),
                p.inclusive.as_secs(),
            )
        })
        .filter(|(_, visits, _, _)| *visits > 0)
        .collect();
    rows.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:>8} {:>12} {:>12} {:>8}",
        "region", "visits", "exclusive", "inclusive", "excl%"
    );
    let denom = total.as_secs().max(1e-12);
    for (name, visits, excl, incl) in rows {
        let _ = writeln!(
            out,
            "{name:<32} {visits:>8} {excl:>11.6}s {incl:>11.6}s {:>7.2}%",
            100.0 * excl / denom
        );
    }
    let _ = writeln!(out, "total allocation time: {total}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_coll, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur};

    #[test]
    fn profile_lists_hot_regions_first() {
        let df = Distr::block2(0.01, 0.05);
        let config = SimConfig {
            nprocs: 4,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        };
        let trace = ats_mpi::run(config, move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 2, &c);
        });
        let text = render_profile(&trace);
        let first_data_line = text.lines().nth(1).unwrap();
        assert!(
            first_data_line.starts_with("do_work"),
            "work dominates: {first_data_line}"
        );
        assert!(text.contains("MPI_Barrier"));
        assert!(text.contains("imbalance_at_mpi_barrier"));
        assert!(text.contains("total allocation time"));
    }

    #[test]
    fn empty_trace_profile_is_just_headers() {
        let trace = Trace::new(vec![], vec![]);
        let text = render_profile(&trace);
        assert_eq!(text.lines().count(), 2, "header + total line");
    }
}
