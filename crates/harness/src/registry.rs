//! The property-function registry: from a (name, parameters, run options)
//! triple to an executed synthetic test program and its trace.
//!
//! This is the runtime half of the paper's single-property test-program
//! generator: where the C prototype generates a `main` per property with
//! PDT, ATS-RS binds every catalog entry to a typed dispatcher so any
//! property can be executed from a command-line-style specification.

use crate::params::ParamValues;
use ats_core::catalog::{self, Paradigm, PropertySpec};
use ats_core::{composite, properties, with_omp, BaseComm, CompositeParams};
use ats_mpi::SimConfig;
use ats_omp::OmpConfig;
use ats_runtime::{MachineModel, SimBackend, VDur, WorkMode};
use ats_trace::{Trace, TracePool};

/// How to execute a generated test program.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// MPI process count for MPI/hybrid/sequential properties.
    pub nprocs: usize,
    /// Rank-execution backend: discrete-event coroutines (default) or one
    /// OS thread per rank. Traces are byte-identical either way; the
    /// backend only changes how many host threads a run occupies (see
    /// [`crate::pool::threads_per_config`]).
    pub backend: SimBackend,
    /// Machine model.
    pub model: MachineModel,
    /// RNG seed.
    pub seed: u64,
    /// Default message shape.
    pub base: BaseComm,
    /// Virtual or calibrated-real work.
    pub work_mode: WorkMode,
    /// `MPI_Init` cost.
    pub init_time: VDur,
    /// `MPI_Finalize` cost.
    pub finalize_time: VDur,
    /// Experiment-engine worker count: how many configurations a sweep
    /// may execute concurrently. `0` = the host's available parallelism.
    /// Single runs ([`run_single`]) ignore this.
    pub jobs: usize,
    /// Oversubscription guard for sweeps: total simulated-rank threads
    /// allowed at once (`jobs × nprocs ≤ budget`). `None` = an
    /// auto-derived budget (see `pool::default_thread_budget`).
    pub thread_budget: Option<usize>,
    /// Event-buffer pool handed to every run launched through these
    /// options (`None` = the experiment engine creates a private one per
    /// sweep; single runs allocate fresh vectors). Pooling reuses capacity
    /// only — traces and sweep rows are byte-identical with or without it.
    pub trace_pool: Option<TracePool>,
    /// Observability registry every run launched through these options
    /// records into (`None` = no recording). Like the pool, recording
    /// never changes traces or rows.
    pub obs: Option<ats_obs::Handle>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            nprocs: 8,
            backend: SimBackend::default(),
            model: MachineModel::zero(),
            seed: 0xA75_5EED,
            base: BaseComm::default(),
            work_mode: WorkMode::Virtual,
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            jobs: 0,
            thread_budget: None,
            trace_pool: None,
            obs: None,
        }
    }
}

impl RunOpts {
    /// Builder: set the process count.
    pub fn procs(mut self, n: usize) -> Self {
        self.nprocs = n;
        self
    }

    /// Builder: select the rank-execution backend.
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder: set the experiment-engine worker count (`0` = auto).
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n;
        self
    }

    /// Builder: cap total simulated-rank threads across workers.
    pub fn thread_budget(mut self, budget: usize) -> Self {
        self.thread_budget = Some(budget);
        self
    }

    /// Builder: recycle event buffers through `pool` across runs.
    pub fn trace_pool(mut self, pool: TracePool) -> Self {
        self.trace_pool = Some(pool);
        self
    }

    /// Builder: record metrics into `obs` for every run.
    pub fn obs(mut self, obs: ats_obs::Handle) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Builder: use the default (non-zero) machine model with init/finalize
    /// costs, as a real 2002 cluster run would look.
    pub fn realistic(mut self) -> Self {
        self.model = MachineModel::default();
        self.init_time = VDur::from_millis(30);
        self.finalize_time = VDur::from_millis(10);
        self
    }

    /// The [`SimConfig`] these options induce — public so subsystems that
    /// drive `ats_mpi::run` with their own rank closures (composite
    /// scenarios, the fuzzer) price runs identically to [`run_single`].
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            nprocs: self.nprocs,
            backend: self.backend,
            model: self.model.clone(),
            work_mode: self.work_mode,
            seed: self.seed,
            init_time: self.init_time,
            finalize_time: self.finalize_time,
            trace_pool: self.trace_pool.clone(),
            obs: self.obs.clone(),
            ..Default::default()
        }
    }

    /// The [`OmpConfig`] these options induce (see [`RunOpts::sim_config`]).
    pub fn omp_config(&self) -> OmpConfig {
        OmpConfig {
            model: self.model.clone(),
            work_mode: self.work_mode,
            seed: self.seed,
            trace_pool: self.trace_pool.clone(),
            ..Default::default()
        }
    }
}

/// Errors from dispatching a property run: the suite-wide
/// [`ats_core::Error`]. A failure attributed to one concrete configuration
/// (kind [`ats_core::ErrorKind::Config`]) carries the property name and the
/// full parameter assignment, so a failing configuration inside a
/// pool-parallel sweep is identifiable from the error alone, without
/// re-running the sweep serially — see [`ats_core::Error::in_config`].
pub type RunError = ats_core::Error;

/// Look up the catalog entry for `name`.
pub fn spec_of(name: &str) -> Result<&'static PropertySpec, RunError> {
    catalog::find(name).ok_or_else(|| RunError::unknown_property(name))
}

/// Execute the single-property test program for `name` with `params`,
/// returning its trace. This is exactly what a generated standalone binary
/// does after parsing its command line.
pub fn run_single(name: &str, params: &ParamValues, opts: &RunOpts) -> Result<Trace, RunError> {
    let spec = spec_of(name)?;
    let p = params.clone();
    let base = opts.base;
    let trace = match spec.paradigm {
        Paradigm::Omp => {
            // Pure shared-memory program.
            ats_omp::run_omp(opts.omp_config(), move |m| dispatch_omp(name, &p, m))
        }
        _ => ats_mpi::run(opts.sim_config(), move |proc| {
            dispatch_mpi(name, &p, &base, proc)
        }),
    };
    Ok(trace)
}

fn dispatch_omp<M: ats_omp::Master>(name: &str, v: &ParamValues, m: &mut M) {
    use properties::{negative, omp};
    match name {
        "imbalance_in_omp_pregion" => {
            omp::imbalance_in_omp_pregion(m, v.count("nthreads"), &v.distr("df"), v.count("r"))
        }
        "imbalance_at_omp_barrier" => {
            omp::imbalance_at_omp_barrier(m, v.count("nthreads"), &v.distr("df"), v.count("r"))
        }
        "progressive_imbalance_at_omp_barrier" => omp::progressive_imbalance_at_omp_barrier(
            m,
            v.count("nthreads"),
            &v.distr("df"),
            v.seconds("growth"),
            v.count("r"),
        ),
        "imbalance_in_omp_loop" => {
            omp::imbalance_in_omp_loop(m, v.count("nthreads"), &v.distr("df"), v.count("r"))
        }
        "imbalance_at_omp_sections" => {
            omp::imbalance_at_omp_sections(m, v.count("nthreads"), &v.distr("df"), v.count("r"))
        }
        "unparallelized_in_omp_single" => omp::unparallelized_in_omp_single(
            m,
            v.count("nthreads"),
            v.seconds("singlework"),
            v.count("r"),
        ),
        "unparallelized_in_omp_master" => omp::unparallelized_in_omp_master(
            m,
            v.count("nthreads"),
            v.seconds("masterwork"),
            v.seconds("otherwork"),
            v.count("r"),
        ),
        "omp_critical_contention" => omp::omp_critical_contention(
            m,
            v.count("nthreads"),
            v.seconds("bodywork"),
            v.seconds("outsidework"),
            v.count("r"),
        ),
        "omp_lock_contention" => omp::omp_lock_contention(
            m,
            v.count("nthreads"),
            v.seconds("bodywork"),
            v.seconds("outsidework"),
            v.count("r"),
        ),
        "balanced_omp_region" => {
            negative::balanced_omp_region(m, v.count("nthreads"), v.seconds("work"), v.count("r"))
        }
        "balanced_omp_loop" => {
            negative::balanced_omp_loop(m, v.count("nthreads"), v.seconds("work"), 4, v.count("r"))
        }
        other => unreachable!("OMP dispatch for non-OMP property {other}"),
    }
}

fn dispatch_mpi(name: &str, v: &ParamValues, base: &BaseComm, p: &mut ats_mpi::Proc) {
    let c = p.comm_world();
    run_in_comm(name, v, base, p, &c);
}

/// Execute property `name` on an arbitrary communicator inside a running
/// simulated rank. This is the composition primitive: scenario builders
/// (hand-written composites, the fuzzer) split the world into groups and
/// place catalog properties on the resulting sub-communicators. Every
/// rank of `c` must call this with the same arguments; ranks outside `c`
/// must not call it. OMP-paradigm properties run a per-rank thread team
/// (the hybrid harness mode) and use `c` only for placement.
///
/// Panics if `name` has no catalog entry — validate with [`spec_of`]
/// before entering the simulation closure.
pub fn run_in_comm(
    name: &str,
    v: &ParamValues,
    base: &BaseComm,
    p: &mut ats_mpi::Proc,
    c: &ats_mpi::Comm,
) {
    use properties::{hybrid, mpi_coll, mpi_p2p, negative, sequential};
    let c = c.clone();
    match name {
        "late_sender" => mpi_p2p::late_sender(
            p,
            base,
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.count("r"),
            &c,
        ),
        "late_receiver" => mpi_p2p::late_receiver(
            p,
            base,
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.count("r"),
            &c,
        ),
        "late_sender_at_wait" => mpi_p2p::late_sender_at_wait(
            p,
            base,
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.seconds("postwork"),
            v.count("r"),
            &c,
        ),
        "imbalance_at_mpi_barrier" => {
            mpi_coll::imbalance_at_mpi_barrier(p, &v.distr("df"), v.count("r"), &c)
        }
        "growing_imbalance_at_mpi_barrier" => mpi_coll::growing_imbalance_at_mpi_barrier(
            p,
            v.seconds("basework"),
            v.seconds("extrastep"),
            v.count("r"),
            &c,
        ),
        "progressive_imbalance_at_mpi_barrier" => mpi_coll::progressive_imbalance_at_mpi_barrier(
            p,
            &v.distr("df"),
            v.seconds("growth"),
            v.count("r"),
            &c,
        ),
        "messages_in_wrong_order" => mpi_p2p::messages_in_wrong_order(
            p,
            base,
            v.seconds("basework"),
            v.seconds("delay"),
            v.count("r"),
            &c,
        ),
        "imbalance_at_mpi_alltoall" => {
            mpi_coll::imbalance_at_mpi_alltoall(p, base, &v.distr("df"), v.count("r"), &c)
        }
        "imbalance_at_mpi_allreduce" => {
            mpi_coll::imbalance_at_mpi_allreduce(p, base, &v.distr("df"), v.count("r"), &c)
        }
        "imbalance_at_mpi_scan" => {
            mpi_coll::imbalance_at_mpi_scan(p, base, &v.distr("df"), v.count("r"), &c)
        }
        "late_broadcast" => mpi_coll::late_broadcast(
            p,
            base,
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        "late_scatter" => mpi_coll::late_scatter(
            p,
            base,
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        "late_scatterv" => mpi_coll::late_scatterv(
            p,
            base,
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        "early_reduce" => mpi_coll::early_reduce(
            p,
            base,
            v.seconds("rootwork"),
            v.seconds("baseextrawork"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        "early_gather" => mpi_coll::early_gather(
            p,
            base,
            v.seconds("rootwork"),
            v.seconds("baseextrawork"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        "early_gatherv" => mpi_coll::early_gatherv(
            p,
            base,
            v.seconds("rootwork"),
            v.seconds("baseextrawork"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        "omp_imbalance_at_mpi_barrier" => hybrid::omp_imbalance_at_mpi_barrier(
            p,
            v.count("nthreads"),
            // Rank-level scale spread so the thread imbalance also skews
            // the ranks against each other at the MPI barrier.
            &ats_core::Distr::linear(0.5, 1.5),
            &v.distr("df"),
            v.count("r"),
            &c,
        ),
        "mpi_in_omp_serial" => hybrid::mpi_in_omp_serial(
            p,
            base,
            v.count("nthreads"),
            v.seconds("basework"),
            v.seconds("extrawork"),
            v.count("r"),
            &c,
        ),
        "serial_initialization" => sequential::serial_initialization(
            p,
            v.count("root"),
            v.seconds("extrawork"),
            v.seconds("basework"),
            &c,
        ),
        "dominating_sequential_phases" => sequential::dominating_sequential_phases(
            p,
            v.count("root"),
            v.seconds("extrawork"),
            v.seconds("basework"),
            v.count("r"),
            &c,
        ),
        "balanced_mpi_barrier" => {
            negative::balanced_mpi_barrier(p, v.seconds("work"), v.count("r"), &c)
        }
        "balanced_mpi_p2p" => {
            negative::balanced_mpi_p2p(p, base, v.seconds("work"), v.count("r"), &c)
        }
        "balanced_ring" => negative::balanced_ring(p, base, v.seconds("work"), v.count("r"), &c),
        "balanced_mpi_collectives" => negative::balanced_mpi_collectives(
            p,
            base,
            v.seconds("work"),
            v.count("root"),
            v.count("r"),
            &c,
        ),
        // OMP-paradigm properties (including the OMP negative cases) can
        // also run inside an MPI rank — the hybrid harness mode.
        "balanced_omp_region" | "balanced_omp_loop" => {
            with_omp(p, |m| dispatch_omp(name, v, m));
        }
        other if catalog::find(other).map(|s| s.paradigm) == Some(Paradigm::Omp) => {
            with_omp(p, |m| dispatch_omp(other, v, m));
        }
        other => unreachable!("MPI dispatch for unknown property {other}"),
    }
}

/// Run the paper's Figure 3.3 composite (all MPI property functions).
pub fn run_composite_all_mpi(params: &CompositeParams, opts: &RunOpts) -> Trace {
    let params = params.clone();
    ats_mpi::run(opts.sim_config(), move |p| {
        let c = p.comm_world();
        composite::all_mpi_properties(p, &params, &c);
    })
}

/// Run the paper's Figure 3.4 composite (two communicators in parallel).
pub fn run_composite_two_comms(params: &CompositeParams, opts: &RunOpts) -> Trace {
    let params = params.clone();
    ats_mpi::run(opts.sim_config(), move |p| {
        let c = p.comm_world();
        composite::two_communicator_composite(p, &params, &c);
    })
}

/// Run the hybrid composite.
pub fn run_composite_hybrid(nthreads: usize, params: &CompositeParams, opts: &RunOpts) -> Trace {
    let params = params.clone();
    ats_mpi::run(opts.sim_config(), move |p| {
        let c = p.comm_world();
        composite::hybrid_composite(p, nthreads, &params, &c);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};

    #[test]
    fn every_catalog_entry_is_runnable() {
        let opts = RunOpts::default().procs(4);
        for spec in ats_core::CATALOG {
            // Shrink work so the full sweep is fast.
            let mut params = ParamValues::defaults(spec);
            params.set("r", crate::params::ParamValue::Count(1));
            let trace = run_single(spec.name, &params, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(
                trace.num_events() > 0,
                "{} produced an empty trace",
                spec.name
            );
            assert!(
                ats_trace::check_wellformed(&trace).is_empty(),
                "{} produced a malformed trace",
                spec.name
            );
            assert!(
                trace.find_region(spec.name).is_some(),
                "{} has no property frame",
                spec.name
            );
        }
    }

    #[test]
    fn backend_flows_into_sim_config() {
        assert_eq!(RunOpts::default().sim_config().backend, SimBackend::Event);
        let opts = RunOpts::default().backend(SimBackend::Thread);
        assert_eq!(opts.sim_config().backend, SimBackend::Thread);
    }

    #[test]
    fn unknown_property_is_an_error() {
        let err = run_single(
            "flux_capacitor",
            &ParamValues::default(),
            &RunOpts::default(),
        );
        assert_eq!(
            err.unwrap_err().kind(),
            ats_core::ErrorKind::UnknownProperty
        );
    }

    #[test]
    fn config_error_displays_property_and_params() {
        let spec = spec_of("late_sender").unwrap();
        let params = ParamValues::defaults(spec);
        let err =
            RunError::unknown_property("late_sender").in_config("late_sender", &params.to_cli());
        assert_eq!(err.kind(), ats_core::ErrorKind::Config);
        let msg = err.to_string();
        assert!(msg.contains("late_sender"), "{msg}");
        assert!(msg.contains("basework=0.01"), "{msg}");
        assert!(msg.contains("extrawork=0.04"), "{msg}");
        assert!(msg.contains("r=3"), "{msg}");
        // Attribution is idempotent: re-wrapping keeps the original config.
        let rewrapped = err.clone().in_config("other", "");
        assert_eq!(err, rewrapped);
    }

    #[test]
    fn run_in_comm_places_properties_on_split_communicators() {
        // Even ranks run late_sender, odd ranks stay balanced; both halves
        // meet at a final world barrier. The analyzer must localize the
        // finding under the even half's property frame only.
        let opts = RunOpts::default().procs(8);
        let spec = spec_of("late_sender").unwrap();
        let pos = ParamValues::defaults(spec);
        let neg = ParamValues::defaults(spec_of("balanced_mpi_barrier").unwrap());
        let base = opts.base;
        let trace = ats_mpi::run(opts.sim_config(), move |p| {
            let world = p.comm_world();
            let color = (p.rank() % 2) as i64;
            let sub = p
                .comm_split(color, p.rank() as i64, &world)
                .expect("non-negative color");
            if color == 0 {
                run_in_comm("late_sender", &pos, &base, p, &sub);
            } else {
                run_in_comm("balanced_mpi_barrier", &neg, &base, p, &sub);
            }
            p.barrier(&world);
        });
        assert!(ats_trace::check_wellformed(&trace).is_empty());
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report
                .findings_for("LateSender")
                .iter()
                .any(|f| f.call_path.contains("late_sender/MPI_Recv")),
            "late sender not localized: {:?}",
            report.findings
        );
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.call_path.contains("balanced_mpi_barrier")),
            "balanced half produced findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn positive_runs_detected_negative_runs_clean() {
        let opts = RunOpts::default().procs(4);
        for spec in ats_core::CATALOG {
            let params = ParamValues::defaults(spec);
            let trace = run_single(spec.name, &params, &opts).unwrap();
            let report = analyze(&trace, &AnalyzerConfig::default());
            match spec.expected_property {
                Some(expected) => {
                    assert!(
                        report.severity_of(expected) > 0.0,
                        "{}: {expected} not detected",
                        spec.name
                    );
                }
                None => {
                    assert!(
                        report.is_clean(),
                        "{}: negative case produced findings {:?}",
                        spec.name,
                        report.findings
                    );
                }
            }
        }
    }

    #[test]
    fn composites_run_under_registry_opts() {
        let opts = RunOpts::default().procs(8);
        let params = CompositeParams {
            basework: 0.001,
            extrawork: 0.004,
            reps: 1,
            ..Default::default()
        };
        let t1 = run_composite_all_mpi(&params, &opts);
        let t2 = run_composite_two_comms(&params, &opts);
        let t3 = run_composite_hybrid(2, &params, &opts);
        for t in [&t1, &t2, &t3] {
            assert!(ats_trace::check_wellformed(t).is_empty());
        }
    }
}
