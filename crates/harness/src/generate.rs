//! The single-property test-program generator.
//!
//! The paper envisions generating standalone main programs "automatically
//! from the performance property function signatures, e.g., using a parser
//! tool like PDT" and lists the generator as unimplemented future work.
//! ATS-RS implements it: every catalog entry can be rendered into a
//! complete, compilable Rust source file whose `main` parses the property
//! parameters from `key=value` command-line arguments and executes the
//! property through the registry.
//!
//! (The `single_property` example binary in this repository is itself an
//! instance of the generated skeleton, kept generic over the property
//! name.)

use ats_core::{ParamKind, PropertySpec};
use std::fmt::Write as _;

/// Render the usage text for one property's generated program.
pub fn usage(spec: &PropertySpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "usage: {} [key=value ...]", spec.name);
    let _ = writeln!(out, "  {}", spec.description);
    let _ = writeln!(out, "parameters:");
    for p in spec.params {
        let kind = match p.kind {
            ParamKind::Seconds => "seconds",
            ParamKind::Count => "count",
            ParamKind::Distribution => "distribution",
        };
        let range = p
            .range_display()
            .map(|r| format!(" range={r}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {:<14} {:<12} default={:<24} {}{}",
            p.name, kind, p.default, p.help, range
        );
    }
    out
}

/// Generate the complete Rust source of a standalone single-property test
/// program for `spec`.
pub fn generate_program(spec: &PropertySpec) -> String {
    let mut src = String::new();
    let _ = writeln!(
        src,
        "//! Auto-generated ATS single-property test program: `{}`.",
        spec.name
    );
    let _ = writeln!(src, "//!");
    let _ = writeln!(src, "//! {}", spec.description);
    let _ = writeln!(
        src,
        "//! Generated from the ATS catalog signature; do not edit."
    );
    let _ = writeln!(src);
    let _ = writeln!(
        src,
        "use ats_harness::{{run_single, ParamValues, RunOpts}};"
    );
    let _ = writeln!(src);
    let _ = writeln!(src, "fn main() {{");
    let _ = writeln!(
        src,
        "    let spec = ats_core::catalog::find({:?}).expect(\"in catalog\");",
        spec.name
    );
    let _ = writeln!(
        src,
        "    let args: Vec<String> = std::env::args().skip(1).collect();"
    );
    let _ = writeln!(src, "    if args.iter().any(|a| a == \"--help\") {{");
    let _ = writeln!(
        src,
        "        print!(\"{{}}\", ats_harness::generate::usage(spec));"
    );
    let _ = writeln!(src, "        return;");
    let _ = writeln!(src, "    }}");
    let _ = writeln!(
        src,
        "    let refs: Vec<&str> = args.iter().map(String::as_str).collect();"
    );
    let _ = writeln!(
        src,
        "    let params = match ParamValues::from_args(spec, &refs) {{"
    );
    let _ = writeln!(src, "        Ok(p) => p,");
    let _ = writeln!(src, "        Err(e) => {{");
    let _ = writeln!(src, "            eprintln!(\"{}: {{e}}\");", spec.name);
    let _ = writeln!(src, "            std::process::exit(2);");
    let _ = writeln!(src, "        }}");
    let _ = writeln!(src, "    }};");
    let _ = writeln!(src, "    let opts = RunOpts::default();");
    let _ = writeln!(
        src,
        "    let trace = run_single({:?}, &params, &opts).expect(\"catalog name\");",
        spec.name
    );
    let _ = writeln!(src, "    let report = ats_analyzer::analyze(");
    let _ = writeln!(src, "        &trace,");
    let _ = writeln!(src, "        &ats_analyzer::AnalyzerConfig::default(),");
    let _ = writeln!(src, "    );");
    let _ = writeln!(src, "    println!(\"{{}}\", report.render(&trace));");
    let _ = writeln!(src, "}}");
    src
}

/// Generate programs for the whole catalog: `(file name, source)` pairs.
pub fn generate_all() -> Vec<(String, String)> {
    ats_core::CATALOG
        .iter()
        .map(|spec| (format!("{}.rs", spec.name), generate_program(spec)))
        .collect()
}

/// Generate a Fortran 90 driver skeleton for `spec` — the paper's closing
/// request ("Because of its importance in the scientific computing
/// community, we also need a Fortran version, ideally automatically
/// generated from the C version"). The emitted program parses the same
/// `key=value` command line and calls the property function through the
/// (hypothetical) `ats` Fortran module; it documents the calling
/// convention for groups porting the suite to a real MPI + Fortran stack.
pub fn generate_fortran(spec: &PropertySpec) -> String {
    let mut src = String::new();
    let _ = writeln!(
        src,
        "! Auto-generated ATS single-property test program: {}",
        spec.name
    );
    let _ = writeln!(src, "! {}", spec.description);
    let _ = writeln!(
        src,
        "! Generated from the ATS catalog signature; do not edit."
    );
    let _ = writeln!(src, "program ats_{}", spec.name);
    let _ = writeln!(src, "  use ats");
    let _ = writeln!(src, "  use mpi");
    let _ = writeln!(src, "  implicit none");
    let _ = writeln!(src, "  integer :: ierr");
    for p in spec.params {
        let decl = match p.kind {
            ParamKind::Seconds => "real(kind=8)",
            ParamKind::Count => "integer",
            ParamKind::Distribution => "type(ats_distr)",
        };
        let _ = writeln!(src, "  {} :: {}", decl, p.name);
    }
    let _ = writeln!(src, "  call MPI_Init(ierr)");
    for p in spec.params {
        let _ = writeln!(
            src,
            "  call ats_parse_{}('{}', '{}', {})",
            match p.kind {
                ParamKind::Seconds => "seconds",
                ParamKind::Count => "count",
                ParamKind::Distribution => "distr",
            },
            p.name,
            p.default,
            p.name
        );
    }
    let args: Vec<&str> = spec.params.iter().map(|p| p.name).collect();
    let _ = writeln!(
        src,
        "  call ats_{}({}, MPI_COMM_WORLD)",
        spec.name,
        args.join(", ")
    );
    let _ = writeln!(src, "  call MPI_Finalize(ierr)");
    let _ = writeln!(src, "end program ats_{}", spec.name);
    src
}

/// Fortran drivers for the whole catalog.
pub fn generate_all_fortran() -> Vec<(String, String)> {
    ats_core::CATALOG
        .iter()
        .map(|spec| (format!("{}.f90", spec.name), generate_fortran(spec)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::catalog;

    #[test]
    fn usage_lists_all_parameters() {
        let spec = catalog::find("late_broadcast").unwrap();
        let u = usage(spec);
        for p in spec.params {
            assert!(u.contains(p.name), "usage missing {}", p.name);
            assert!(u.contains(p.default), "usage missing default {}", p.default);
        }
        assert!(u.contains("late_broadcast"));
    }

    #[test]
    fn usage_shows_legal_ranges() {
        let spec = catalog::find("late_broadcast").unwrap();
        let u = usage(spec);
        // Numeric parameters advertise their legal range; the root rank's
        // upper bound is the communicator size, rendered as an open bound.
        assert!(u.contains("range=[1, 64]"), "reps range missing:\n{u}");
        assert!(u.contains("range=[0, ..]"), "root range missing:\n{u}");
        assert!(u.contains("range=[0, 1]"), "seconds range missing:\n{u}");
        // Distribution parameters take no numeric range.
        let imb = catalog::find("imbalance_at_mpi_barrier").unwrap();
        let line = usage(imb)
            .lines()
            .find(|l| l.trim_start().starts_with("df"))
            .unwrap()
            .to_owned();
        assert!(!line.contains("range="), "df should have no range: {line}");
    }

    #[test]
    fn generated_source_is_plausible_rust() {
        let spec = catalog::find("late_sender").unwrap();
        let src = generate_program(spec);
        assert!(src.contains("fn main()"));
        assert!(src.contains("run_single(\"late_sender\""));
        assert!(src.contains("ParamValues::from_args"));
        assert!(src.contains("ats_analyzer::analyze"));
        // Balanced braces — a cheap structural sanity check.
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in generated source");
    }

    #[test]
    fn fortran_driver_has_the_right_shape() {
        let spec = catalog::find("late_broadcast").unwrap();
        let f = generate_fortran(spec);
        assert!(f.starts_with("! Auto-generated"));
        assert!(f.contains("program ats_late_broadcast"));
        assert!(f.contains("call MPI_Init(ierr)"));
        assert!(f.contains("call MPI_Finalize(ierr)"));
        assert!(f.contains("call ats_late_broadcast(basework, extrawork, root, r, MPI_COMM_WORLD)"));
        for p in spec.params {
            assert!(f.contains(p.name), "missing parameter {}", p.name);
        }
        assert!(f.trim_end().ends_with("end program ats_late_broadcast"));
    }

    #[test]
    fn fortran_catalog_complete() {
        let all = generate_all_fortran();
        assert_eq!(all.len(), ats_core::CATALOG.len());
        for (name, src) in &all {
            assert!(name.ends_with(".f90"));
            assert!(src.contains("implicit none"));
        }
    }

    #[test]
    fn generate_all_covers_catalog() {
        let all = generate_all();
        assert_eq!(all.len(), ats_core::CATALOG.len());
        for (name, src) in &all {
            assert!(name.ends_with(".rs"));
            assert!(src.contains("Auto-generated"));
        }
    }
}
