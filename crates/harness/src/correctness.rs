//! Positive/negative correctness scoring of an analysis tool.
//!
//! The suite's whole purpose (paper §1): "the tool must find relevant
//! performance problems in ill-behaving applications, but should not
//! detect spurious problems in well-tuned programs." Given the catalog's
//! expectations and the in-repo analyzer, these functions compute that
//! verdict suite-wide.

use crate::params::ParamValues;
use crate::registry::{run_single, spec_of, RunError, RunOpts};
use ats_analyzer::{analyze, AnalyzerConfig};
use ats_core::catalog::{Paradigm, PropertySpec};
use serde::Serialize;
use std::fmt::Write as _;

/// Verdict for one property function under one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Verdict {
    /// Property function name.
    pub property: String,
    /// The expected analyzer property, if any.
    pub expected: Option<String>,
    /// Severity assigned to the expected property.
    pub severity: f64,
    /// Detected at all (severity above the analyzer threshold)?
    pub detected: bool,
    /// Localized at the expected call path?
    pub localized: bool,
    /// Findings for other properties.
    pub extra_findings: Vec<String>,
}

impl Verdict {
    /// The tool behaved correctly on this test case.
    pub fn correct(&self) -> bool {
        match &self.expected {
            Some(_) => self.detected && self.localized,
            None => self.extra_findings.is_empty(),
        }
    }
}

/// Score one positive test case.
pub fn score_positive(
    spec: &PropertySpec,
    params: &ParamValues,
    opts: &RunOpts,
    analyzer: &AnalyzerConfig,
) -> Result<Verdict, RunError> {
    let expected = spec
        .expected_property
        .expect("score_positive needs a positive case");
    let trace = run_single(spec.name, params, opts)?;
    let report = analyze(&trace, analyzer);
    let severity = report.severity_of(expected);
    let hits = report.findings_for(expected);
    let detected = !hits.is_empty();
    let localized = hits
        .iter()
        .any(|f| f.call_path.contains(spec.name) && f.call_path.contains(spec.localized_at));
    let extra_findings = report
        .findings
        .iter()
        .filter(|f| f.property != expected)
        .map(|f| format!("{} at {}", f.property, f.call_path))
        .collect();
    Ok(Verdict {
        property: spec.name.to_owned(),
        expected: Some(expected.to_owned()),
        severity,
        detected,
        localized,
        extra_findings,
    })
}

/// Score one negative test case.
pub fn score_negative(
    spec: &PropertySpec,
    params: &ParamValues,
    opts: &RunOpts,
    analyzer: &AnalyzerConfig,
) -> Result<Verdict, RunError> {
    assert!(
        spec.expected_property.is_none(),
        "score_negative needs a negative case"
    );
    let trace = run_single(spec.name, params, opts)?;
    let report = analyze(&trace, analyzer);
    let extra_findings = report
        .findings
        .iter()
        .map(|f| format!("{} at {}", f.property, f.call_path))
        .collect();
    Ok(Verdict {
        property: spec.name.to_owned(),
        expected: None,
        severity: 0.0,
        detected: false,
        localized: true,
        extra_findings,
    })
}

/// Suite-wide correctness summary.
#[derive(Debug, Clone, Serialize)]
pub struct SuiteSummary {
    /// Per-case verdicts.
    pub verdicts: Vec<Verdict>,
    /// Positive cases detected + localized.
    pub positives_correct: usize,
    /// Total positive cases.
    pub positives_total: usize,
    /// Negative cases with no findings.
    pub negatives_correct: usize,
    /// Total negative cases.
    pub negatives_total: usize,
}

impl SuiteSummary {
    /// All cases behaved correctly.
    pub fn all_correct(&self) -> bool {
        self.positives_correct == self.positives_total
            && self.negatives_correct == self.negatives_total
    }

    /// Render a compact report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "positive correctness: {}/{}   negative correctness: {}/{}",
            self.positives_correct,
            self.positives_total,
            self.negatives_correct,
            self.negatives_total
        );
        for v in &self.verdicts {
            let status = if v.correct() { "ok " } else { "FAIL" };
            match &v.expected {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "  [{status}] {:<32} expect {e:<22} severity {:.4} localized {}",
                        v.property, v.severity, v.localized
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  [{status}] {:<32} expect silence, findings: {}",
                        v.property,
                        v.extra_findings.len()
                    );
                }
            }
        }
        out
    }
}

/// Run the full catalog at defaults and score everything.
pub fn score_catalog(opts: &RunOpts, analyzer: &AnalyzerConfig) -> Result<SuiteSummary, RunError> {
    let mut verdicts = Vec::new();
    for spec in ats_core::CATALOG {
        let _ = spec_of(spec.name)?; // sanity
        let params = ParamValues::defaults(spec);
        let v = if spec.paradigm == Paradigm::Negative {
            score_negative(spec, &params, opts, analyzer)?
        } else {
            score_positive(spec, &params, opts, analyzer)?
        };
        verdicts.push(v);
    }
    let positives: Vec<&Verdict> = verdicts.iter().filter(|v| v.expected.is_some()).collect();
    let negatives: Vec<&Verdict> = verdicts.iter().filter(|v| v.expected.is_none()).collect();
    Ok(SuiteSummary {
        positives_correct: positives.iter().filter(|v| v.correct()).count(),
        positives_total: positives.len(),
        negatives_correct: negatives.iter().filter(|v| v.correct()).count(),
        negatives_total: negatives.len(),
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::catalog;

    #[test]
    fn full_catalog_scores_perfectly_with_the_reference_analyzer() {
        // This is the headline experiment: the in-repo analyzer passes the
        // whole suite — every positive property detected and localized,
        // every negative case silent.
        let summary =
            score_catalog(&RunOpts::default().procs(4), &AnalyzerConfig::default()).unwrap();
        assert!(
            summary.all_correct(),
            "suite verdicts:\n{}",
            summary.render()
        );
        assert_eq!(
            summary.positives_total + summary.negatives_total,
            catalog::CATALOG.len()
        );
        assert!(summary.negatives_total >= 6);
    }

    #[test]
    fn a_blind_tool_would_fail_positive_correctness() {
        // Simulate a broken tool via an absurd threshold: it reports
        // nothing, so every positive case must score incorrect.
        let strict = AnalyzerConfig::default().threshold(0.99);
        let spec = catalog::find("late_sender").unwrap();
        let v = score_positive(
            spec,
            &ParamValues::defaults(spec),
            &RunOpts::default().procs(4),
            &strict,
        )
        .unwrap();
        assert!(!v.correct(), "a silent tool must fail positive cases");
    }

    #[test]
    fn render_mentions_every_case() {
        let summary =
            score_catalog(&RunOpts::default().procs(4), &AnalyzerConfig::default()).unwrap();
        let text = summary.render();
        for spec in ats_core::CATALOG {
            assert!(text.contains(spec.name), "render missing {}", spec.name);
        }
    }
}
