//! Vampir-style timeline rendering.
//!
//! The paper's Figures 3.2–3.4 are Vampir timeline screenshots: one row
//! per location, colored by the state the location is in (computation, MPI
//! call, OpenMP construct, idle). This module regenerates those views from
//! a [`Trace`], as fixed-width text (for terminals/EXPERIMENTS.md) and as
//! standalone SVG.

use ats_runtime::VTime;
use ats_trace::{EventKind, LocationId, RegionKind, Trace};
use std::fmt::Write as _;

/// The state of a location at an instant, derived from its region stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Before the first / after the last event.
    Absent,
    /// No open region (between calls).
    Idle,
    /// Computing (`do_work` and user regions).
    Work,
    /// In an MPI point-to-point call.
    MpiP2p,
    /// In an MPI collective call.
    MpiColl,
    /// In MPI setup (init/finalize).
    MpiSetup,
    /// In an OpenMP synchronization construct.
    OmpSync,
    /// In any other OpenMP construct or parallel region.
    Omp,
}

impl State {
    /// Glyph used in text timelines.
    pub fn glyph(self) -> char {
        match self {
            State::Absent => ' ',
            State::Idle => '.',
            State::Work => '#',
            State::MpiP2p => 'm',
            State::MpiColl => 'C',
            State::MpiSetup => 'I',
            State::OmpSync => 'b',
            State::Omp => 'o',
        }
    }

    /// Fill color used in SVG timelines.
    pub fn color(self) -> &'static str {
        match self {
            State::Absent => "none",
            State::Idle => "#e8e8e8",
            State::Work => "#4c78a8",
            State::MpiP2p => "#e45756",
            State::MpiColl => "#f58518",
            State::MpiSetup => "#b279a2",
            State::OmpSync => "#eeca3b",
            State::Omp => "#54a24b",
        }
    }

    fn from_region(kind: RegionKind) -> State {
        match kind {
            RegionKind::Work | RegionKind::User | RegionKind::Property => State::Work,
            RegionKind::MpiP2p => State::MpiP2p,
            RegionKind::MpiCollective => State::MpiColl,
            RegionKind::MpiSetup => State::MpiSetup,
            RegionKind::OmpSync => State::OmpSync,
            RegionKind::OmpParallel | RegionKind::OmpWorkshare => State::Omp,
        }
    }
}

/// A sampled timeline: `columns` states per location.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Sampled rows, sorted by location.
    pub rows: Vec<(LocationId, Vec<State>)>,
    /// Start of the sampled window.
    pub t0: VTime,
    /// End of the sampled window.
    pub t1: VTime,
}

/// Sample the trace into `columns` time bins. Each bin shows the state the
/// location is in at the bin's start instant (piecewise-constant
/// interpolation, like a zoomed-out Vampir view).
pub fn sample(trace: &Trace, columns: usize) -> Timeline {
    assert!(columns > 0, "need at least one column");
    let t0 = trace.start_time();
    let t1 = trace.end_time();
    let span = (t1 - t0).as_nanos().max(1);
    let mut rows = Vec::with_capacity(trace.num_locations());
    for lt in &trace.locations {
        // Build the stepwise state function from the event stream, then
        // sample it.
        let mut steps: Vec<(VTime, State)> = Vec::with_capacity(lt.events.len() + 1);
        let mut stack: Vec<State> = Vec::new();
        let begin = lt.start_time();
        let end = lt.end_time();
        steps.push((begin, State::Idle));
        for ev in &lt.events {
            match ev.kind {
                EventKind::Enter { region } => {
                    let state = trace
                        .region_kind(region)
                        .map(State::from_region)
                        .unwrap_or(State::Work);
                    stack.push(state);
                    steps.push((ev.time, state));
                }
                EventKind::Exit { .. } => {
                    stack.pop();
                    steps.push((ev.time, stack.last().copied().unwrap_or(State::Idle)));
                }
                _ => {}
            }
        }
        let mut samples = Vec::with_capacity(columns);
        let mut cursor = 0usize;
        for col in 0..columns {
            let t = VTime(t0.0 + span * col as u64 / columns as u64);
            if t < begin || t > end {
                samples.push(State::Absent);
                continue;
            }
            while cursor + 1 < steps.len() && steps[cursor + 1].0 <= t {
                cursor += 1;
            }
            samples.push(steps[cursor].1);
        }
        rows.push((lt.location, samples));
    }
    Timeline { rows, t0, t1 }
}

/// Render a text timeline (one row per location).
pub fn render_text(trace: &Trace, columns: usize) -> String {
    let tl = sample(trace, columns);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline {} .. {}   (#=work m=p2p C=collective I=init/finalize b=omp-sync o=omp .=idle)",
        tl.t0, tl.t1
    );
    for (loc, states) in &tl.rows {
        let row: String = states.iter().map(|s| s.glyph()).collect();
        let _ = writeln!(out, "{loc:>6} |{row}|");
    }
    out
}

/// Render an SVG timeline including message arrows (Vampir draws each
/// matched send→receive pair as a line from the sender's post to the
/// receiver's completion).
pub fn render_svg(trace: &Trace, columns: usize) -> String {
    render_svg_opts(trace, columns, true)
}

/// SVG rendering with the message arrows optional.
pub fn render_svg_opts(trace: &Trace, columns: usize, arrows: bool) -> String {
    let tl = sample(trace, columns);
    let cell_w = 4;
    let cell_h = 14;
    let label_w = 60;
    let width = label_w + columns * cell_w + 10;
    let height = tl.rows.len() * (cell_h + 2) + 30;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="10">"#
    );
    let _ = writeln!(
        out,
        r#"<text x="4" y="12">ATS timeline {} .. {}</text>"#,
        tl.t0, tl.t1
    );
    // Row lookup for message arrows: only rank-level rows carry messages.
    let row_of = |rank: u32| -> Option<usize> {
        tl.rows
            .iter()
            .position(|(l, _)| l.rank == rank && l.thread == 0)
    };
    let x_of = |t: ats_runtime::VTime| -> usize {
        let span = (tl.t1 - tl.t0).as_nanos().max(1);
        label_w + ((t - tl.t0).as_nanos() as usize * (columns * cell_w)) / span as usize
    };
    for (row_idx, (loc, states)) in tl.rows.iter().enumerate() {
        let y = 20 + row_idx * (cell_h + 2);
        let _ = writeln!(out, r#"<text x="4" y="{}">{loc}</text>"#, y + cell_h - 3);
        // Run-length encode adjacent identical states to keep files small.
        let mut col = 0;
        while col < states.len() {
            let state = states[col];
            let mut run = 1;
            while col + run < states.len() && states[col + run] == state {
                run += 1;
            }
            if state != State::Absent {
                let x = label_w + col * cell_w;
                let _ = writeln!(
                    out,
                    r#"<rect x="{x}" y="{y}" width="{}" height="{cell_h}" fill="{}"><title>{loc} {state:?}</title></rect>"#,
                    run * cell_w,
                    state.color()
                );
            }
            col += run;
        }
    }
    if arrows {
        let ex = ats_analyzer::extract::extract(trace);
        for pair in ats_analyzer::patterns::match_messages(&ex) {
            let (Some(sr), Some(rr)) = (row_of(pair.send.loc.rank), row_of(pair.recv.loc.rank))
            else {
                continue;
            };
            let x1 = x_of(pair.send.post);
            let y1 = 20 + sr * (cell_h + 2) + cell_h / 2;
            let x2 = x_of(pair.recv.completion);
            let y2 = 20 + rr * (cell_h + 2) + cell_h / 2;
            let _ = writeln!(
                out,
                r##"<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" stroke="#222222" stroke-width="0.7" opacity="0.6"/>"##
            );
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_coll, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur};

    fn barrier_trace() -> Trace {
        let df = Distr::block2(0.01, 0.05);
        let config = SimConfig {
            nprocs: 4,
            model: MachineModel::zero(),
            init_time: VDur::from_millis(5),
            finalize_time: VDur::from_millis(5),
            ..Default::default()
        };
        ats_mpi::run(config, move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 2, &c);
        })
    }

    #[test]
    fn text_timeline_has_one_row_per_location() {
        let trace = barrier_trace();
        let text = render_text(&trace, 80);
        let rows: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert!(row.contains('|'));
        }
    }

    #[test]
    fn fast_ranks_show_waiting_as_collective_time() {
        let trace = barrier_trace();
        let tl = sample(&trace, 100);
        // Rank 0 (10ms work) spends more of the pre-barrier phase in 'C'
        // than rank 3 (50ms work).
        let count_c = |row: &[State]| row.iter().filter(|s| **s == State::MpiColl).count();
        let r0 = count_c(&tl.rows[0].1);
        let r3 = count_c(&tl.rows[3].1);
        assert!(r0 > r3, "rank0 collective cells {r0} vs rank3 {r3}");
    }

    #[test]
    fn init_phase_sampled_as_setup() {
        let trace = barrier_trace();
        let tl = sample(&trace, 100);
        for (_, row) in &tl.rows {
            assert_eq!(row[0], State::MpiSetup, "run starts inside MPI_Init");
        }
    }

    #[test]
    fn svg_contains_rows_and_valid_header() {
        let trace = barrier_trace();
        let svg = render_svg(&trace, 60);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(
            svg.matches("<rect").count() >= 4,
            "at least one rect per rank"
        );
    }

    #[test]
    fn svg_draws_message_arrows_for_p2p_programs() {
        use ats_core::{properties::mpi_p2p, BaseComm};
        let config = SimConfig {
            nprocs: 4,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        };
        let trace = ats_mpi::run(config, |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.005, 0.02, 3, &c);
        });
        let with = render_svg(&trace, 80);
        let without = render_svg_opts(&trace, 80, false);
        // 2 pairs x 3 reps = 6 messages = 6 arrow lines.
        assert_eq!(with.matches("<line").count(), 6);
        assert_eq!(without.matches("<line").count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_rejected() {
        let trace = barrier_trace();
        let _ = sample(&trace, 0);
    }
}
