//! Experiment management: systematic parameter sweeps over property
//! functions, with analyzer-in-the-loop scoring.
//!
//! The paper delegates "more extensive experiments ... through scripting
//! languages or through automatic experiment management systems, such as
//! ZENTURIO". This module plays that role: a [`Sweep`] describes a
//! cartesian family of single-property runs; [`Experiment::run`] executes
//! them, analyzes every trace, and collects one [`ExperimentRow`] per
//! configuration.

use crate::cache::{self, row_from_json, row_to_json};
use crate::params::{ParamValue, ParamValues};
use crate::pool;
use crate::registry::{run_single, spec_of, RunError, RunOpts};
use ats_analyzer::{analyze, AnalyzerConfig};
use ats_core::catalog::PropertySpec;
use ats_store::{Cache, Json};
use ats_trace::{PoolStats, TracePool};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

/// One axis of a sweep: a parameter name and the values it takes.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Parameter to vary.
    pub param: String,
    /// Values to try.
    pub values: Vec<ParamValue>,
}

impl Sweep {
    /// Sweep a seconds-valued parameter.
    pub fn seconds(param: &str, values: impl IntoIterator<Item = f64>) -> Self {
        Sweep {
            param: param.to_owned(),
            values: values.into_iter().map(ParamValue::Seconds).collect(),
        }
    }

    /// Sweep a count-valued parameter.
    pub fn counts(param: &str, values: impl IntoIterator<Item = usize>) -> Self {
        Sweep {
            param: param.to_owned(),
            values: values.into_iter().map(ParamValue::Count).collect(),
        }
    }
}

/// One configuration's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRow {
    /// Property function name.
    pub property: String,
    /// Full parameter assignment (command-line syntax).
    pub params: String,
    /// Process count used.
    pub nprocs: usize,
    /// Severity the analyzer assigned to the *expected* property
    /// (0 for negative cases).
    pub detected_severity: f64,
    /// Absolute waiting time behind that severity, in seconds. For
    /// monotonicity checks this is the right quantity: severity is a
    /// *fraction* and stays constant when the knob scales the whole run.
    pub detected_wait_secs: f64,
    /// Whether any finding matched the expected property at the expected
    /// call-path location.
    pub localized: bool,
    /// Number of findings for *unexpected* properties (false positives
    /// from this program's point of view).
    pub unexpected_findings: usize,
    /// Trace size, as a cost indicator.
    pub events: usize,
}

/// Execution statistics for one [`Experiment::run_with_stats`] call.
///
/// Timing lives here — not in [`ExperimentRow`] — so row sequences stay
/// byte-identical across `jobs` settings (the engine's determinism
/// guarantee) while throughput remains observable.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentStats {
    /// Number of configurations executed.
    pub configs: usize,
    /// Worker count requested (after `0 = auto` resolution).
    pub jobs_requested: usize,
    /// Worker count actually used after the oversubscription guard.
    pub jobs: usize,
    /// Thread budget the guard enforced
    /// (`jobs × threads_per_config ≤ budget`).
    pub thread_budget: usize,
    /// Rank-execution backend label (`"event"` or `"thread"`). Rows are
    /// identical either way; the label records how the sweep was hosted.
    pub backend: &'static str,
    /// Largest process count among the configurations.
    pub max_nprocs: usize,
    /// End-to-end wall-clock for the whole sweep, in seconds.
    pub wall_secs: f64,
    /// Throughput: `configs / wall_secs`.
    pub configs_per_sec: f64,
    /// Per-configuration wall-clock, in cartesian-combo order.
    pub config_wall_secs: Vec<f64>,
    /// Event-buffer pool counters for the sweep (reuse hits/misses and
    /// buffers recycled). Capacity reuse only — rows are unaffected.
    pub trace_pool: PoolStats,
    /// Result-cache mode label (`"off"`, `"ro"`, `"rw"`).
    pub cache_mode: &'static str,
    /// Configurations replayed from the artifact store instead of
    /// executed. Replayed rows are byte-identical to executed ones — the
    /// determinism guarantee is what licenses the shortcut.
    pub cache_hits: usize,
    /// Configurations executed because no valid cache entry existed.
    pub cache_misses: usize,
    /// Artifact bytes loaded for replayed configurations.
    pub cache_bytes_read: u64,
    /// Artifact bytes published for newly executed configurations
    /// (`rw` mode only).
    pub cache_bytes_written: u64,
}

/// Per-configuration cache accounting, folded into [`ExperimentStats`].
#[derive(Debug, Clone, Copy, Default)]
struct CacheOutcome {
    hit: bool,
    bytes_read: u64,
    bytes_written: u64,
}

/// A family of runs over one property.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Property function name.
    pub property: String,
    /// Axes (cartesian product).
    pub sweeps: Vec<Sweep>,
    /// Process-count axis. Empty = use `opts.nprocs` only. When set, the
    /// grid is the *outer* loop of the cartesian product.
    pub procs_grid: Vec<usize>,
    /// Execution options.
    pub opts: RunOpts,
    /// Analyzer configuration.
    pub analyzer: AnalyzerConfig,
    /// Result cache (`None` = no caching). In `ro`/`rw` modes each
    /// configuration's key is computed *before* simulating; hits replay
    /// the stored row, only misses execute (and, in `rw`, publish).
    pub cache: Option<Cache>,
}

impl Experiment {
    /// An experiment over `property` with default options and no axes
    /// (a single run at catalog defaults).
    pub fn new(property: &str) -> Self {
        Experiment {
            property: property.to_owned(),
            sweeps: Vec::new(),
            procs_grid: Vec::new(),
            opts: RunOpts::default(),
            analyzer: AnalyzerConfig::default(),
            cache: None,
        }
    }

    /// Builder: add an axis.
    pub fn sweep(mut self, s: Sweep) -> Self {
        self.sweeps.push(s);
        self
    }

    /// Builder: sweep the process count itself (outer axis).
    pub fn procs_grid(mut self, procs: impl IntoIterator<Item = usize>) -> Self {
        self.procs_grid = procs.into_iter().collect();
        self
    }

    /// Builder: set run options.
    pub fn opts(mut self, opts: RunOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Builder: set the analyzer configuration.
    pub fn analyzer(mut self, analyzer: AnalyzerConfig) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Builder: attach a result cache.
    pub fn cache(mut self, cache: Cache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Execute all configurations (see [`Experiment::run_with_stats`]).
    pub fn run(&self) -> Result<Vec<ExperimentRow>, RunError> {
        self.run_with_stats().map(|(rows, _)| rows)
    }

    /// Execute all configurations on a bounded worker pool and return the
    /// rows plus throughput statistics.
    ///
    /// Workers (`opts.jobs`, `0 = available parallelism`) pull
    /// configurations from a shared queue; the oversubscription guard
    /// clamps the worker count so `jobs × nprocs` — each configuration
    /// spawns `nprocs` virtual-rank threads internally — stays within
    /// `opts.thread_budget`. Rows come back in cartesian-combo order
    /// (process grid outer, parameter axes inner) regardless of
    /// completion order, so any `jobs` setting yields the same sequence.
    pub fn run_with_stats(&self) -> Result<(Vec<ExperimentRow>, ExperimentStats), RunError> {
        let spec = spec_of(&self.property)?;
        let procs: Vec<usize> = if self.procs_grid.is_empty() {
            vec![self.opts.nprocs]
        } else {
            self.procs_grid.clone()
        };
        let param_combos = cartesian(&self.sweeps);
        let configs: Vec<(usize, &[(String, ParamValue)])> = procs
            .iter()
            .flat_map(|&p| param_combos.iter().map(move |c| (p, c.as_slice())))
            .collect();
        let max_nprocs = procs.iter().copied().max().unwrap_or(1);
        let thread_budget = self
            .opts
            .thread_budget
            .unwrap_or_else(pool::default_thread_budget);
        let jobs_requested = if self.opts.jobs == 0 {
            pool::auto_jobs()
        } else {
            self.opts.jobs
        };
        // The guard budgets *OS threads*, not ranks: under the discrete-
        // event backend every configuration occupies one worker thread
        // regardless of nprocs, so wide configs no longer throttle jobs.
        let threads_per_config = pool::threads_per_config(self.opts.backend, max_nprocs);
        let jobs = pool::effective_jobs(jobs_requested, threads_per_config, thread_budget)
            .min(configs.len().max(1));
        // All workers share one event-buffer pool: each finished (analyzed)
        // trace donates its grown vectors to whichever configuration runs
        // next. Capacity reuse only — rows stay byte-identical for any
        // `jobs` value.
        let trace_pool = self.opts.trace_pool.clone().unwrap_or_default();
        let started = Instant::now();
        let outcomes = pool::run_indexed_with(jobs, configs.len(), self.opts.obs.clone(), |i| {
            let (nprocs, combo) = configs[i];
            let config_started = Instant::now();
            let row = self.run_config(spec, nprocs, combo, &trace_pool);
            (row, config_started.elapsed().as_secs_f64())
        });
        let wall_secs = started.elapsed().as_secs_f64();
        let mut rows = Vec::with_capacity(outcomes.len());
        let mut config_wall_secs = Vec::with_capacity(outcomes.len());
        let mut cache_hits = 0usize;
        let mut cache_bytes_read = 0u64;
        let mut cache_bytes_written = 0u64;
        for (row, secs) in outcomes {
            let (row, outcome) = row?;
            cache_hits += outcome.hit as usize;
            cache_bytes_read += outcome.bytes_read;
            cache_bytes_written += outcome.bytes_written;
            rows.push(row);
            config_wall_secs.push(secs);
        }
        let stats = ExperimentStats {
            configs: rows.len(),
            jobs_requested,
            jobs,
            thread_budget,
            backend: self.opts.backend.effective().label(),
            max_nprocs,
            wall_secs,
            configs_per_sec: if wall_secs > 0.0 {
                rows.len() as f64 / wall_secs
            } else {
                0.0
            },
            config_wall_secs,
            trace_pool: trace_pool.stats(),
            cache_mode: self
                .cache
                .as_ref()
                .map_or("off", |c| c.mode.label()),
            cache_hits,
            cache_misses: rows.len() - cache_hits,
            cache_bytes_read,
            cache_bytes_written,
        };
        Ok((rows, stats))
    }

    /// Run and score one configuration: consult the cache, else
    /// run → trace → analyze → row (→ publish).
    fn run_config(
        &self,
        spec: &'static PropertySpec,
        nprocs: usize,
        combo: &[(String, ParamValue)],
        trace_pool: &TracePool,
    ) -> Result<(ExperimentRow, CacheOutcome), RunError> {
        let mut params = ParamValues::defaults(spec);
        for (name, value) in combo {
            params.set(name, value.clone());
        }
        let params_cli = params.to_cli();
        // The key is computed *before* simulating: a hit replays the
        // stored row without paying for the run at all.
        let key = self
            .cache
            .as_ref()
            .map(|_| cache::config_key(&self.property, &params_cli, nprocs, &self.opts, &self.analyzer));
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(entry) = cache
                .lookup(key)
                .map_err(|e| e.in_config(&self.property, &params_cli))?
            {
                // A verified entry missing or corrupting its row document
                // degrades to a miss (re-execute; `rw` re-publishes).
                let cached_row = entry
                    .file(cache::ROW_FILE)
                    .and_then(|bytes| std::str::from_utf8(bytes).ok())
                    .and_then(|text| Json::parse(text).ok())
                    .and_then(|doc| row_from_json(&doc).ok());
                if let Some(row) = cached_row {
                    return Ok((
                        row,
                        CacheOutcome {
                            hit: true,
                            bytes_read: entry.bytes,
                            bytes_written: 0,
                        },
                    ));
                }
            }
        }
        let opts = self
            .opts
            .clone()
            .procs(nprocs)
            .trace_pool(trace_pool.clone());
        // Attribute any failure to this exact configuration so a failing
        // combo inside a pool-parallel sweep is identifiable from the
        // error alone.
        let trace = run_single(&self.property, &params, &opts)
            .map_err(|e| e.in_config(&self.property, &params_cli))?;
        let report = analyze(&trace, &self.analyzer);
        let total_alloc = trace.total_alloc_time().as_secs();
        let (detected_severity, localized, unexpected) = match spec.expected_property {
            Some(expected) => {
                let sev = report.severity_of(expected);
                let localized = report.findings_for(expected).iter().any(|f| {
                    f.call_path.contains(spec.name) && f.call_path.contains(spec.localized_at)
                });
                let unexpected = report
                    .findings
                    .iter()
                    .filter(|f| f.property != expected)
                    .count();
                (sev, localized, unexpected)
            }
            None => (0.0, report.is_clean(), report.findings.len()),
        };
        let events = trace.num_events();
        let row = ExperimentRow {
            property: self.property.clone(),
            params: params_cli,
            nprocs,
            detected_severity,
            detected_wait_secs: detected_severity * total_alloc,
            localized,
            unexpected_findings: unexpected,
            events,
        };
        let mut bytes_written = 0;
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if cache.mode.writes() {
                // Persist the full result set: the replayable row, the
                // analyzer report (the byte-identity artifact) and the
                // binary trace. Encoding costs are only paid in `rw` mode.
                let row_bytes = row_to_json(&row).render();
                let report_bytes = report.to_json();
                let trace_bytes = ats_trace::binfmt::encode(&trace);
                bytes_written = cache
                    .publish(
                        key,
                        &cache::config_key_doc(
                            &row.property,
                            &row.params,
                            nprocs,
                            &self.opts,
                            &self.analyzer,
                        ),
                        &[
                            (cache::ROW_FILE, row_bytes.as_bytes()),
                            (cache::REPORT_FILE, report_bytes.as_bytes()),
                            (cache::TRACE_FILE, &trace_bytes),
                        ],
                    )
                    .map_err(|e| e.in_config(&row.property, &row.params))?;
            }
        }
        // The trace has been fully scored (and, in `rw` mode, persisted);
        // donate its event buffers to the next configuration.
        trace_pool.recycle(trace);
        Ok((
            row,
            CacheOutcome {
                hit: false,
                bytes_read: 0,
                bytes_written,
            },
        ))
    }
}

/// Cartesian product of sweep axes (a single empty assignment when there
/// are no axes).
fn cartesian(sweeps: &[Sweep]) -> Vec<Vec<(String, ParamValue)>> {
    let mut combos: Vec<Vec<(String, ParamValue)>> = vec![Vec::new()];
    for s in sweeps {
        let mut next = Vec::with_capacity(combos.len() * s.values.len());
        for combo in &combos {
            for v in &s.values {
                let mut c = combo.clone();
                c.push((s.param.clone(), v.clone()));
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Render rows as a Markdown table (the format EXPERIMENTS.md embeds).
pub fn to_markdown(rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| property | params | procs | severity | localized | unexpected |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | `{}` | {} | {:.4} | {} | {} |",
            r.property, r.params, r.nprocs, r.detected_severity, r.localized, r.unexpected_findings
        );
    }
    out
}

/// Kendall rank-correlation between two sequences — the statistic used to
/// check that detected severity *tracks* the programmed severity
/// monotonically (1.0 = perfect agreement).
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sequences must pair up");
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_products() {
        let sweeps = vec![
            Sweep::seconds("a", [1.0, 2.0]),
            Sweep::counts("b", [10, 20, 30]),
        ];
        assert_eq!(cartesian(&sweeps).len(), 6);
        assert_eq!(cartesian(&[]).len(), 1);
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn severity_sweep_is_monotone_for_late_sender() {
        let extras = [0.005, 0.01, 0.02, 0.04];
        let exp = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", extras))
            .opts(RunOpts::default().procs(4));
        let rows = exp.run().unwrap();
        assert_eq!(rows.len(), 4);
        let severities: Vec<f64> = rows.iter().map(|r| r.detected_severity).collect();
        let tau = kendall_tau(extras.as_ref(), &severities);
        assert_eq!(tau, 1.0, "severity must track extrawork: {severities:?}");
        assert!(rows.iter().all(|r| r.localized), "all runs localized");
    }

    #[test]
    fn negative_property_rows_stay_clean() {
        let exp = Experiment::new("balanced_mpi_barrier")
            .sweep(Sweep::seconds("work", [0.005, 0.01]))
            .opts(RunOpts::default().procs(4));
        let rows = exp.run().unwrap();
        for r in &rows {
            assert_eq!(r.detected_severity, 0.0);
            assert!(r.localized, "negative rows are 'localized' when clean");
            assert_eq!(r.unexpected_findings, 0);
        }
    }

    #[test]
    fn markdown_table_shape() {
        let exp = Experiment::new("late_broadcast").opts(RunOpts::default().procs(4));
        let rows = exp.run().unwrap();
        let md = to_markdown(&rows);
        assert!(md.starts_with("| property |"));
        assert!(md.contains("late_broadcast"));
        assert_eq!(md.lines().count(), 2 + rows.len());
    }

    #[test]
    fn unknown_property_errors() {
        assert!(Experiment::new("warp_drive").run().is_err());
        assert!(Experiment::new("warp_drive").run_with_stats().is_err());
    }

    /// The engine's central guarantee: any `jobs` setting yields the same
    /// row sequence, for a severity × nprocs sweep (ISSUE: E-pos shape).
    #[test]
    fn parallel_rows_match_serial_rows_exactly() {
        for property in ["late_sender", "imbalance_at_mpi_barrier"] {
            let exp = |jobs: usize| {
                let mut e = Experiment::new(property).procs_grid([2, 4]);
                e = match property {
                    "late_sender" => e.sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02])),
                    _ => e.sweep(Sweep::counts("r", [1, 2, 3])),
                };
                e.opts(RunOpts::default().jobs(jobs))
            };
            let serial = exp(1).run_with_stats().unwrap();
            let parallel = exp(8).run_with_stats().unwrap();
            assert_eq!(serial.1.jobs, 1);
            assert!(parallel.1.jobs > 1, "pool must actually parallelize");
            // Byte-identical row sequences: compare serialized forms.
            let a = serde_json::to_string(&serial.0).unwrap();
            let b = serde_json::to_string(&parallel.0).unwrap();
            assert_eq!(a, b, "{property}: jobs=1 vs jobs=8 rows diverge");
        }
    }

    #[test]
    fn stats_cover_every_config() {
        let (rows, stats) = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", [0.005, 0.01]))
            .procs_grid([2, 4])
            .opts(RunOpts::default().jobs(2))
            .run_with_stats()
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(stats.configs, 4);
        assert_eq!(stats.config_wall_secs.len(), 4);
        assert_eq!(stats.max_nprocs, 4);
        assert!(stats.wall_secs > 0.0);
        assert!(stats.configs_per_sec > 0.0);
        assert!(stats.jobs * stats.max_nprocs <= stats.thread_budget);
        // Grid is the outer axis: rows 0-1 at P=2, rows 2-3 at P=4.
        assert_eq!(
            rows.iter().map(|r| r.nprocs).collect::<Vec<_>>(),
            vec![2, 2, 4, 4]
        );
    }

    #[test]
    fn oversubscription_guard_clamps_wide_configs() {
        use ats_runtime::SimBackend;
        // Pinned to the thread backend: only there does a configuration
        // occupy nprocs budget slots.
        let (_, stats) = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", [0.005, 0.01]))
            .opts(
                RunOpts::default()
                    .backend(SimBackend::Thread)
                    .procs(8)
                    .jobs(64)
                    .thread_budget(16),
            )
            .run_with_stats()
            .unwrap();
        assert_eq!(stats.jobs_requested, 64);
        assert_eq!(stats.jobs, 2, "64 workers × 8 ranks clamped to 16/8 = 2");
        assert_eq!(stats.backend, "thread");
    }

    /// Under the event backend a configuration is one budget slot, so the
    /// same tight budget that clamps the thread backend leaves the worker
    /// count alone (bounded only by the number of configurations).
    #[test]
    fn event_backend_configs_count_as_one_slot() {
        let (_, stats) = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02, 0.04]))
            .opts(RunOpts::default().procs(8).jobs(4).thread_budget(4))
            .run_with_stats()
            .unwrap();
        assert_eq!(stats.backend, "event");
        assert_eq!(
            stats.jobs, 4,
            "4 workers × 1 slot fit a 4-thread budget even at 8 ranks each"
        );
    }

    /// The engine pools event buffers between configurations: after the
    /// first config primes the pool, later configs are served from
    /// recycled capacity, and rows are unaffected.
    #[test]
    fn sweep_reuses_event_buffers_between_configs() {
        let exp = |pool: TracePool| {
            Experiment::new("late_sender")
                .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02]))
                .opts(RunOpts::default().procs(4).jobs(1).trace_pool(pool))
        };
        let pool = TracePool::new();
        let (rows, stats) = exp(pool.clone()).run_with_stats().unwrap();
        let s = pool.stats();
        assert_eq!(s.recycled, 3 * 4, "3 configs × 4 ranks recycled");
        assert_eq!(s.misses, 4, "only the first config allocates");
        assert_eq!(s.hits, 2 * 4, "configs 2 and 3 reuse config 1's buffers");
        assert_eq!(stats.trace_pool, s);
        // Identical rows without an external pool (the engine then uses a
        // private one internally).
        let baseline = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02]))
            .opts(RunOpts::default().procs(4).jobs(1))
            .run()
            .unwrap();
        assert_eq!(
            serde_json::to_string(&rows).unwrap(),
            serde_json::to_string(&baseline).unwrap(),
            "pooling must not change any row"
        );
    }

    /// Cold `rw` sweep publishes every configuration; the warm re-run
    /// replays all of them with byte-identical rows and writes nothing.
    #[test]
    fn warm_sweeps_replay_from_the_store() {
        use ats_store::{Cache, CacheMode};
        let dir = ats_testutil::TempDir::new("ats-exp-cache");
        let dir = dir.path();
        let exp = |mode: CacheMode| {
            Experiment::new("late_sender")
                .sweep(Sweep::seconds("extrawork", [0.005, 0.01]))
                .procs_grid([2, 4])
                .opts(RunOpts::default().jobs(1))
                .cache(Cache::open(&dir, mode).unwrap())
        };
        let (cold_rows, cold) = exp(CacheMode::ReadWrite).run_with_stats().unwrap();
        assert_eq!(cold.cache_mode, "rw");
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 4));
        assert!(cold.cache_bytes_written > 0, "cold rw publishes");
        let (warm_rows, warm) = exp(CacheMode::ReadWrite).run_with_stats().unwrap();
        assert_eq!((warm.cache_hits, warm.cache_misses), (4, 0));
        assert!(warm.cache_bytes_read > 0);
        assert_eq!(warm.cache_bytes_written, 0, "hits are never re-published");
        let render = |rows: &[ExperimentRow]| -> Vec<String> {
            rows.iter().map(|r| row_to_json(r).render()).collect()
        };
        assert_eq!(render(&cold_rows), render(&warm_rows), "replay is byte-identical");
        // `ro` replays what `rw` left behind; `off` ignores the store.
        let (_, ro) = exp(CacheMode::Read).run_with_stats().unwrap();
        assert_eq!((ro.cache_mode, ro.cache_hits), ("ro", 4));
        let (_, off) = exp(CacheMode::Off).run_with_stats().unwrap();
        assert_eq!((off.cache_mode, off.cache_hits), ("off", 0));
    }

    /// Changing one sweep value invalidates only the combos that use it:
    /// shared values still hit, new ones miss.
    #[test]
    fn single_parameter_change_invalidates_only_affected_combos() {
        use ats_store::{Cache, CacheMode};
        let dir = ats_testutil::TempDir::new("ats-exp-inval");
        let dir = dir.path();
        let exp = |extras: [f64; 2]| {
            Experiment::new("late_sender")
                .sweep(Sweep::seconds("extrawork", extras))
                .opts(RunOpts::default().procs(2).jobs(1))
                .cache(Cache::open(&dir, CacheMode::ReadWrite).unwrap())
        };
        let (_, cold) = exp([0.005, 0.01]).run_with_stats().unwrap();
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 2));
        let (_, shifted) = exp([0.005, 0.02]).run_with_stats().unwrap();
        assert_eq!(
            (shifted.cache_hits, shifted.cache_misses),
            (1, 1),
            "the shared value hits, the changed one misses"
        );
    }

    /// Scheduling knobs are not key ingredients: a warm run at a different
    /// `jobs` count still replays everything.
    #[test]
    fn cache_hits_survive_jobs_changes() {
        use ats_store::{Cache, CacheMode};
        let dir = ats_testutil::TempDir::new("ats-exp-jobs");
        let dir = dir.path();
        let exp = |jobs: usize| {
            Experiment::new("late_sender")
                .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02]))
                .opts(RunOpts::default().procs(2).jobs(jobs))
                .cache(Cache::open(&dir, CacheMode::ReadWrite).unwrap())
        };
        let (cold_rows, _) = exp(1).run_with_stats().unwrap();
        let (warm_rows, warm) = exp(4).run_with_stats().unwrap();
        assert_eq!((warm.cache_hits, warm.cache_misses), (3, 0));
        let render = |rows: &[ExperimentRow]| -> Vec<String> {
            rows.iter().map(|r| row_to_json(r).render()).collect()
        };
        assert_eq!(render(&cold_rows), render(&warm_rows));
    }

    /// A pool shared across parallel workers keeps rows byte-identical —
    /// the determinism guarantee extends to pooled runs at any `jobs`.
    #[test]
    fn pooled_parallel_rows_match_pooled_serial_rows() {
        let exp = |jobs: usize| {
            Experiment::new("late_sender")
                .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02]))
                .procs_grid([2, 4])
                .opts(RunOpts::default().jobs(jobs).trace_pool(TracePool::new()))
        };
        let serial = exp(1).run().unwrap();
        let parallel = exp(8).run().unwrap();
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
        );
    }
}
