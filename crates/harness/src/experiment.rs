//! Experiment management: systematic parameter sweeps over property
//! functions, with analyzer-in-the-loop scoring.
//!
//! The paper delegates "more extensive experiments ... through scripting
//! languages or through automatic experiment management systems, such as
//! ZENTURIO". This module plays that role: a [`Sweep`] describes a
//! cartesian family of single-property runs; [`Experiment::run`] executes
//! them, analyzes every trace, and collects one [`ExperimentRow`] per
//! configuration.

use crate::params::{ParamValue, ParamValues};
use crate::registry::{run_single, spec_of, RunError, RunOpts};
use ats_analyzer::{analyze, AnalyzerConfig};
use serde::Serialize;
use std::fmt::Write as _;

/// One axis of a sweep: a parameter name and the values it takes.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Parameter to vary.
    pub param: String,
    /// Values to try.
    pub values: Vec<ParamValue>,
}

impl Sweep {
    /// Sweep a seconds-valued parameter.
    pub fn seconds(param: &str, values: impl IntoIterator<Item = f64>) -> Self {
        Sweep {
            param: param.to_owned(),
            values: values.into_iter().map(ParamValue::Seconds).collect(),
        }
    }

    /// Sweep a count-valued parameter.
    pub fn counts(param: &str, values: impl IntoIterator<Item = usize>) -> Self {
        Sweep {
            param: param.to_owned(),
            values: values.into_iter().map(ParamValue::Count).collect(),
        }
    }
}

/// One configuration's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentRow {
    /// Property function name.
    pub property: String,
    /// Full parameter assignment (command-line syntax).
    pub params: String,
    /// Process count used.
    pub nprocs: usize,
    /// Severity the analyzer assigned to the *expected* property
    /// (0 for negative cases).
    pub detected_severity: f64,
    /// Absolute waiting time behind that severity, in seconds. For
    /// monotonicity checks this is the right quantity: severity is a
    /// *fraction* and stays constant when the knob scales the whole run.
    pub detected_wait_secs: f64,
    /// Whether any finding matched the expected property at the expected
    /// call-path location.
    pub localized: bool,
    /// Number of findings for *unexpected* properties (false positives
    /// from this program's point of view).
    pub unexpected_findings: usize,
    /// Trace size, as a cost indicator.
    pub events: usize,
}

/// A family of runs over one property.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Property function name.
    pub property: String,
    /// Axes (cartesian product).
    pub sweeps: Vec<Sweep>,
    /// Execution options.
    pub opts: RunOpts,
    /// Analyzer configuration.
    pub analyzer: AnalyzerConfig,
}

impl Experiment {
    /// An experiment over `property` with default options and no axes
    /// (a single run at catalog defaults).
    pub fn new(property: &str) -> Self {
        Experiment {
            property: property.to_owned(),
            sweeps: Vec::new(),
            opts: RunOpts::default(),
            analyzer: AnalyzerConfig::default(),
        }
    }

    /// Builder: add an axis.
    pub fn sweep(mut self, s: Sweep) -> Self {
        self.sweeps.push(s);
        self
    }

    /// Builder: set run options.
    pub fn opts(mut self, opts: RunOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Execute all configurations.
    pub fn run(&self) -> Result<Vec<ExperimentRow>, RunError> {
        let spec = spec_of(&self.property)?;
        let mut rows = Vec::new();
        let combos = cartesian(&self.sweeps);
        for combo in combos {
            let mut params = ParamValues::defaults(spec);
            for (name, value) in &combo {
                params.set(name, value.clone());
            }
            let trace = run_single(&self.property, &params, &self.opts)?;
            let report = analyze(&trace, &self.analyzer);
            let total_alloc = trace.total_alloc_time().as_secs();
            let (detected_severity, localized, unexpected) = match spec.expected_property {
                Some(expected) => {
                    let sev = report.severity_of(expected);
                    let localized = report.findings_for(expected).iter().any(|f| {
                        f.call_path.contains(spec.name) && f.call_path.contains(spec.localized_at)
                    });
                    let unexpected = report
                        .findings
                        .iter()
                        .filter(|f| f.property != expected)
                        .count();
                    (sev, localized, unexpected)
                }
                None => (0.0, report.is_clean(), report.findings.len()),
            };
            rows.push(ExperimentRow {
                property: self.property.clone(),
                params: params.to_cli(),
                nprocs: self.opts.nprocs,
                detected_severity,
                detected_wait_secs: detected_severity * total_alloc,
                localized,
                unexpected_findings: unexpected,
                events: trace.num_events(),
            });
        }
        Ok(rows)
    }
}

/// Cartesian product of sweep axes (a single empty assignment when there
/// are no axes).
fn cartesian(sweeps: &[Sweep]) -> Vec<Vec<(String, ParamValue)>> {
    let mut combos: Vec<Vec<(String, ParamValue)>> = vec![Vec::new()];
    for s in sweeps {
        let mut next = Vec::with_capacity(combos.len() * s.values.len());
        for combo in &combos {
            for v in &s.values {
                let mut c = combo.clone();
                c.push((s.param.clone(), v.clone()));
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Render rows as a Markdown table (the format EXPERIMENTS.md embeds).
pub fn to_markdown(rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| property | params | procs | severity | localized | unexpected |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | `{}` | {} | {:.4} | {} | {} |",
            r.property, r.params, r.nprocs, r.detected_severity, r.localized, r.unexpected_findings
        );
    }
    out
}

/// Kendall rank-correlation between two sequences — the statistic used to
/// check that detected severity *tracks* the programmed severity
/// monotonically (1.0 = perfect agreement).
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sequences must pair up");
    let n = xs.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let s = dx * dy;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_products() {
        let sweeps = vec![
            Sweep::seconds("a", [1.0, 2.0]),
            Sweep::counts("b", [10, 20, 30]),
        ];
        assert_eq!(cartesian(&sweeps).len(), 6);
        assert_eq!(cartesian(&[]).len(), 1);
    }

    #[test]
    fn kendall_tau_extremes() {
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn severity_sweep_is_monotone_for_late_sender() {
        let extras = [0.005, 0.01, 0.02, 0.04];
        let exp = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", extras))
            .opts(RunOpts::default().procs(4));
        let rows = exp.run().unwrap();
        assert_eq!(rows.len(), 4);
        let severities: Vec<f64> = rows.iter().map(|r| r.detected_severity).collect();
        let tau = kendall_tau(extras.as_ref(), &severities);
        assert_eq!(tau, 1.0, "severity must track extrawork: {severities:?}");
        assert!(rows.iter().all(|r| r.localized), "all runs localized");
    }

    #[test]
    fn negative_property_rows_stay_clean() {
        let exp = Experiment::new("balanced_mpi_barrier")
            .sweep(Sweep::seconds("work", [0.005, 0.01]))
            .opts(RunOpts::default().procs(4));
        let rows = exp.run().unwrap();
        for r in &rows {
            assert_eq!(r.detected_severity, 0.0);
            assert!(r.localized, "negative rows are 'localized' when clean");
            assert_eq!(r.unexpected_findings, 0);
        }
    }

    #[test]
    fn markdown_table_shape() {
        let exp = Experiment::new("late_broadcast").opts(RunOpts::default().procs(4));
        let rows = exp.run().unwrap();
        let md = to_markdown(&rows);
        assert!(md.starts_with("| property |"));
        assert!(md.contains("late_broadcast"));
        assert_eq!(md.lines().count(), 2 + rows.len());
    }

    #[test]
    fn unknown_property_errors() {
        assert!(Experiment::new("warp_drive").run().is_err());
    }
}
