//! Cache-key derivation and row replay for the incremental campaign
//! engine.
//!
//! The suite's runs are deterministic: a configuration's trace — and
//! therefore its analyzer report and [`ExperimentRow`] — is a pure
//! function of *what* is run (property + parameters + process count),
//! *how the simulated machine behaves* (machine model, seed, work mode,
//! message shape, init/finalize costs, backend) and *how the result is
//! interpreted* (analyzer version + configuration). [`config_key`] hashes
//! exactly that set into an [`ats_store::CacheKey`].
//!
//! Knobs that only change how fast a result is computed — `jobs`,
//! `thread_budget`, `trace_pool`, `obs` — are deliberately **excluded**:
//! the engine's determinism guarantee (rows byte-identical at any worker
//! count, either backend hosting mode, pooled or not) is what makes
//! replaying a cached row provably equivalent to re-executing it.
//!
//! The full ingredients document is stored verbatim next to each entry
//! (`entry.json`), so every cached artifact is self-describing.

use crate::experiment::ExperimentRow;
use crate::registry::{RunError, RunOpts};
use ats_analyzer::AnalyzerConfig;
use ats_runtime::{MachineModel, WorkMode};
use ats_store::{CacheKey, Json};

/// Schema tag of experiment-engine key-ingredient documents. Bump on any
/// change to the document layout itself.
pub const KEY_SCHEMA: &str = "ats-store-key/1";

/// Artifact name of the cached row document.
pub const ROW_FILE: &str = "row.json";
/// Artifact name of the cached analyzer report (byte-identity artifact).
pub const REPORT_FILE: &str = "report.json";
/// Artifact name of the cached binary trace.
pub const TRACE_FILE: &str = "trace.atsb";

/// The canonical key-ingredients document for one experiment
/// configuration. Everything that determines the result bytes is in
/// here; nothing that merely schedules the work is.
pub fn config_key_doc(
    property: &str,
    params_cli: &str,
    nprocs: usize,
    opts: &RunOpts,
    analyzer: &AnalyzerConfig,
) -> Json {
    Json::obj()
        .with("schema", KEY_SCHEMA)
        .with("engine", "experiment")
        .with("property", property)
        .with("params", params_cli)
        .with("nprocs", nprocs)
        .with("backend", opts.backend.label())
        .with("model", model_json(&opts.model))
        .with("seed", opts.seed)
        .with("work_mode", work_mode_label(opts.work_mode))
        .with(
            "base",
            Json::obj()
                .with("dtype", format!("{:?}", opts.base.dtype))
                .with("count", opts.base.count),
        )
        .with("init_time_ns", opts.init_time.0)
        .with("finalize_time_ns", opts.finalize_time.0)
        .with(
            "analyzer",
            Json::obj()
                .with("version", ats_analyzer::ANALYSIS_VERSION)
                .with("threshold", analyzer.threshold)
                .with("report_setup_overhead", analyzer.report_setup_overhead),
        )
        .with("trace_format", "atsb")
}

/// The cache key for one experiment configuration
/// (see [`config_key_doc`]).
pub fn config_key(
    property: &str,
    params_cli: &str,
    nprocs: usize,
    opts: &RunOpts,
    analyzer: &AnalyzerConfig,
) -> CacheKey {
    CacheKey::of_value(&config_key_doc(property, params_cli, nprocs, opts, analyzer))
}

fn work_mode_label(mode: WorkMode) -> &'static str {
    match mode {
        WorkMode::Virtual => "virtual",
        WorkMode::Real => "real",
    }
}

/// Every [`MachineModel`] field, exactly (virtual durations in integer
/// nanoseconds). Public so other key-document producers (the campaign
/// service) describe the model identically.
pub fn model_json(m: &MachineModel) -> Json {
    Json::obj()
        .with("latency_ns", m.latency.0)
        .with("send_overhead_ns", m.send_overhead.0)
        .with("recv_overhead_ns", m.recv_overhead.0)
        .with("ns_per_byte", m.ns_per_byte)
        .with("eager_threshold", m.eager_threshold)
        .with("collective_stage_ns", m.collective_stage.0)
        .with("fork_overhead_ns", m.fork_overhead.0)
        .with("join_overhead_ns", m.join_overhead.0)
        .with("barrier_stage_ns", m.barrier_stage.0)
        .with("chunk_dispatch_ns", m.chunk_dispatch.0)
        .with("lock_overhead_ns", m.lock_overhead.0)
}

/// Render a row as the `row.json` artifact. Floats use the canonical
/// shortest-round-trip form, so [`row_from_json`] reconstructs the row
/// bit-exactly.
pub fn row_to_json(row: &ExperimentRow) -> Json {
    Json::obj()
        .with("property", row.property.as_str())
        .with("params", row.params.as_str())
        .with("nprocs", row.nprocs)
        .with("detected_severity", row.detected_severity)
        .with("detected_wait_secs", row.detected_wait_secs)
        .with("localized", row.localized)
        .with("unexpected_findings", row.unexpected_findings)
        .with("events", row.events)
}

/// Reconstruct a row from a cached `row.json` artifact.
pub fn row_from_json(doc: &Json) -> Result<ExperimentRow, RunError> {
    let field = |name: &str| {
        doc.get(name)
            .ok_or_else(|| RunError::store(format!("cached row missing `{name}`")))
    };
    let count = |name: &str| {
        field(name)?
            .as_u64()
            .map(|v| v as usize)
            .ok_or_else(|| RunError::store(format!("cached row `{name}` is not a count")))
    };
    let float = |name: &str| {
        field(name)?
            .as_f64()
            .ok_or_else(|| RunError::store(format!("cached row `{name}` is not a number")))
    };
    let string = |name: &str| {
        field(name)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| RunError::store(format!("cached row `{name}` is not a string")))
    };
    Ok(ExperimentRow {
        property: string("property")?,
        params: string("params")?,
        nprocs: count("nprocs")?,
        detected_severity: float("detected_severity")?,
        detected_wait_secs: float("detected_wait_secs")?,
        localized: field("localized")?
            .as_bool()
            .ok_or_else(|| RunError::store("cached row `localized` is not a bool"))?,
        unexpected_findings: count("unexpected_findings")?,
        events: count("events")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_runtime::SimBackend;

    fn base_key() -> CacheKey {
        config_key(
            "late_sender",
            "basework=0.01 extrawork=0.04 r=3",
            8,
            &RunOpts::default(),
            &AnalyzerConfig::default(),
        )
    }

    /// Every result-determining ingredient, flipped individually, must
    /// produce a distinct key.
    #[test]
    fn each_ingredient_flip_changes_the_key() {
        let opts = RunOpts::default();
        let analyzer = AnalyzerConfig::default();
        let base = base_key();
        let keys = [
            ("property", config_key("late_receiver", "basework=0.01 extrawork=0.04 r=3", 8, &opts, &analyzer)),
            ("params", config_key("late_sender", "basework=0.01 extrawork=0.08 r=3", 8, &opts, &analyzer)),
            ("nprocs", config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 4, &opts, &analyzer)),
            (
                "backend",
                config_key(
                    "late_sender",
                    "basework=0.01 extrawork=0.04 r=3",
                    8,
                    &RunOpts::default().backend(SimBackend::Thread),
                    &analyzer,
                ),
            ),
            (
                "model",
                config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 8, &{
                    let mut o = RunOpts::default();
                    o.model = MachineModel::default();
                    o
                }, &analyzer),
            ),
            (
                "seed",
                config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 8, &{
                    let mut o = RunOpts::default();
                    o.seed ^= 1;
                    o
                }, &analyzer),
            ),
            (
                "work_mode",
                config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 8, &{
                    let mut o = RunOpts::default();
                    o.work_mode = WorkMode::Real;
                    o
                }, &analyzer),
            ),
            (
                "base_comm",
                config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 8, &{
                    let mut o = RunOpts::default();
                    o.base.count *= 2;
                    o
                }, &analyzer),
            ),
            (
                "init_time",
                config_key(
                    "late_sender",
                    "basework=0.01 extrawork=0.04 r=3",
                    8,
                    &RunOpts::default().realistic(),
                    &analyzer,
                ),
            ),
            (
                "threshold",
                config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 8, &opts, &{
                    let mut a = AnalyzerConfig::default();
                    a.threshold *= 2.0;
                    a
                }),
            ),
            (
                "report_setup_overhead",
                config_key("late_sender", "basework=0.01 extrawork=0.04 r=3", 8, &opts, &{
                    let mut a = AnalyzerConfig::default();
                    a.report_setup_overhead = true;
                    a
                }),
            ),
        ];
        for (what, key) in &keys {
            assert_ne!(*key, base, "flipping {what} did not change the key");
        }
        // And all flips are mutually distinct (no accidental collisions).
        for (i, (wa, a)) in keys.iter().enumerate() {
            for (wb, b) in keys.iter().skip(i + 1) {
                assert_ne!(a, b, "{wa} and {wb} collide");
            }
        }
    }

    /// Execution-only knobs must NOT perturb the key: identical work at a
    /// different worker count / budget / pool / obs replays from cache.
    #[test]
    fn scheduling_knobs_are_excluded_from_the_key() {
        let base = base_key();
        for opts in [
            RunOpts::default().jobs(7),
            RunOpts::default().thread_budget(3),
            RunOpts::default().trace_pool(ats_trace::TracePool::new()),
            RunOpts::default().obs(ats_obs::Handle::new()),
        ] {
            let key = config_key(
                "late_sender",
                "basework=0.01 extrawork=0.04 r=3",
                8,
                &opts,
                &AnalyzerConfig::default(),
            );
            assert_eq!(key, base, "a scheduling knob leaked into the key");
        }
    }

    #[test]
    fn key_docs_are_stable_across_rebuilds() {
        assert_eq!(base_key(), base_key());
        let doc = config_key_doc(
            "late_sender",
            "r=3",
            8,
            &RunOpts::default(),
            &AnalyzerConfig::default(),
        );
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(KEY_SCHEMA));
        assert_eq!(doc.get("trace_format").and_then(Json::as_str), Some("atsb"));
        assert!(doc.get("jobs").is_none(), "jobs must not be an ingredient");
    }

    #[test]
    fn rows_round_trip_bit_exactly() {
        let row = ExperimentRow {
            property: "late_sender".into(),
            params: "basework=0.01 extrawork=0.04 r=3".into(),
            nprocs: 8,
            detected_severity: 1.0 / 3.0,
            detected_wait_secs: 0.123456789012345,
            localized: true,
            unexpected_findings: 0,
            events: 4242,
        };
        let text = row_to_json(&row).render();
        let back = row_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.property, row.property);
        assert_eq!(back.params, row.params);
        assert_eq!(back.nprocs, row.nprocs);
        assert_eq!(
            back.detected_severity.to_bits(),
            row.detected_severity.to_bits()
        );
        assert_eq!(
            back.detected_wait_secs.to_bits(),
            row.detected_wait_secs.to_bits()
        );
        assert_eq!(back.localized, row.localized);
        assert_eq!(back.unexpected_findings, row.unexpected_findings);
        assert_eq!(back.events, row.events);
        // Re-rendering the reconstruction reproduces the artifact bytes.
        assert_eq!(row_to_json(&back).render(), text);
    }

    #[test]
    fn malformed_row_documents_are_errors() {
        for bad in [
            Json::obj(),
            Json::obj().with("property", 3u64),
            row_to_json(&ExperimentRow {
                property: "p".into(),
                params: String::new(),
                nprocs: 1,
                detected_severity: 0.0,
                detected_wait_secs: 0.0,
                localized: false,
                unexpected_findings: 0,
                events: 0,
            })
            .with("nprocs", "eight"),
        ] {
            assert!(row_from_json(&bad).is_err());
        }
    }
}
