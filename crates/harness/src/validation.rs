//! Semantics preservation and overhead measurement (paper Chapter 2).
//!
//! "The procedure is simple: First, the test suite is executed on the
//! target system. Second, ... the validation suite is executed again, but
//! this time with instrumentation added by the performance analysis tool.
//! The result of both runs must be the same."
//!
//! External MPI validation suites are unavailable here (and would not run
//! against a simulated substrate), so ATS-RS ships a compact functional
//! validation suite of its own: numeric kernels with checkable answers,
//! each executed instrumented and uninstrumented and compared bit-exactly.
//! The same kernels, run in real-work mode, measure the tool's overhead.

use ats_mpi::datatype::{bytes_to_f64s, bytes_to_i32s, f64s_to_bytes, i32s_to_bytes};
use ats_mpi::{Datatype, Proc, ReduceOp, SimConfig};
use ats_runtime::VDur;
use serde::Serialize;
use std::time::Instant;

/// Outcome of one validation kernel.
#[derive(Debug, Clone, Serialize)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Did the uninstrumented run produce the expected answer?
    pub correct_plain: bool,
    /// Did the instrumented run produce the expected answer?
    pub correct_instrumented: bool,
    /// Were both runs' outputs identical?
    pub outputs_equal: bool,
}

impl KernelResult {
    /// The tool is semantics-preserving on this kernel.
    pub fn passed(&self) -> bool {
        self.correct_plain && self.correct_instrumented && self.outputs_equal
    }
}

/// A validation kernel body: per-rank output values.
type KernelFn = fn(&mut Proc) -> Vec<i64>;
/// Its closed-form expectation: `(rank, size) -> expected output`.
type ExpectFn = fn(usize, usize) -> Vec<i64>;

/// The validation kernels: each returns per-rank output values with a
/// closed-form expectation.
fn kernels() -> Vec<(&'static str, KernelFn, ExpectFn)> {
    vec![
        ("ring_pass", ring_pass, ring_pass_expect),
        ("allreduce_sum", allreduce_sum, allreduce_sum_expect),
        ("prefix_scan", prefix_scan, prefix_scan_expect),
        ("bcast_chain", bcast_chain, bcast_chain_expect),
        ("halo_stencil", halo_stencil, halo_stencil_expect),
        (
            "gather_roundtrip",
            gather_roundtrip,
            gather_roundtrip_expect,
        ),
    ]
}

fn ring_pass(p: &mut Proc) -> Vec<i64> {
    // Pass a counter around the ring, each rank adding its rank.
    let c = p.comm_world();
    let sz = c.size();
    let me = c.rank();
    let mut value: i64;
    if me == 0 {
        value = 1;
        p.send(&value.to_le_bytes(), (me + 1) % sz, 0, &c);
        if sz > 1 {
            let (data, _) = p.recv(sz - 1, 0, &c);
            value = i64::from_le_bytes(data.try_into().unwrap());
        }
    } else {
        let (data, _) = p.recv(me - 1, 0, &c);
        value = i64::from_le_bytes(data.try_into().unwrap()) + me as i64;
        p.send(&value.to_le_bytes(), (me + 1) % sz, 0, &c);
    }
    vec![value]
}

fn ring_pass_expect(rank: usize, size: usize) -> Vec<i64> {
    if size == 1 {
        return vec![1];
    }
    if rank == 0 {
        // Full circle: 1 + sum(1..size-1).
        vec![1 + (1..size as i64).sum::<i64>()]
    } else {
        vec![1 + (1..=rank as i64).sum::<i64>()]
    }
}

fn allreduce_sum(p: &mut Proc) -> Vec<i64> {
    let c = p.comm_world();
    let mine = i32s_to_bytes(&[c.rank() as i32 + 1, 2 * c.rank() as i32]);
    let out = p.allreduce(&mine, ReduceOp::Sum, Datatype::Int32, &c);
    bytes_to_i32s(&out).into_iter().map(i64::from).collect()
}

fn allreduce_sum_expect(_rank: usize, size: usize) -> Vec<i64> {
    let a: i64 = (1..=size as i64).sum();
    let b: i64 = (0..size as i64).map(|r| 2 * r).sum();
    vec![a, b]
}

fn prefix_scan(p: &mut Proc) -> Vec<i64> {
    let c = p.comm_world();
    let mine = i32s_to_bytes(&[c.rank() as i32 + 1]);
    let out = p.scan(&mine, ReduceOp::Sum, Datatype::Int32, &c);
    bytes_to_i32s(&out).into_iter().map(i64::from).collect()
}

fn prefix_scan_expect(rank: usize, _size: usize) -> Vec<i64> {
    vec![(1..=rank as i64 + 1).sum()]
}

fn bcast_chain(p: &mut Proc) -> Vec<i64> {
    // Broadcast from every root in turn; fold the payloads.
    let c = p.comm_world();
    let mut acc = 0i64;
    for root in 0..c.size() {
        let mut buf = if c.rank() == root {
            f64s_to_bytes(&[(root as f64 + 1.0) * 1.5])
        } else {
            Vec::new()
        };
        p.bcast(&mut buf, root, &c);
        acc += (bytes_to_f64s(&buf)[0] * 2.0) as i64;
    }
    vec![acc]
}

fn bcast_chain_expect(_rank: usize, size: usize) -> Vec<i64> {
    vec![(0..size).map(|r| ((r as f64 + 1.0) * 3.0) as i64).sum()]
}

fn halo_stencil(p: &mut Proc) -> Vec<i64> {
    // One Jacobi-like halo exchange + local update on a tiny strip.
    let c = p.comm_world();
    let me = c.rank() as i64;
    let sz = c.size();
    let mut cells = [me * 10, me * 10 + 1, me * 10 + 2];
    let left = if c.rank() == 0 { sz - 1 } else { c.rank() - 1 };
    let right = (c.rank() + 1) % sz;
    let mut sreq1 = p.isend(&cells[0].to_le_bytes(), left, 1, &c);
    let mut sreq2 = p.isend(&cells[2].to_le_bytes(), right, 2, &c);
    let (from_right, _) = p.recv(right, 1, &c);
    let (from_left, _) = p.recv(left, 2, &c);
    p.wait(&mut sreq1);
    p.wait(&mut sreq2);
    let l = i64::from_le_bytes(from_left.try_into().unwrap());
    let r = i64::from_le_bytes(from_right.try_into().unwrap());
    cells[1] = (l + cells[1] + r) / 3;
    cells.to_vec()
}

fn halo_stencil_expect(rank: usize, size: usize) -> Vec<i64> {
    let me = rank as i64;
    let left = if rank == 0 { size - 1 } else { rank - 1 } as i64;
    let right = ((rank + 1) % size) as i64;
    let l = left * 10 + 2;
    let r = right * 10;
    vec![me * 10, (l + me * 10 + 1 + r) / 3, me * 10 + 2]
}

fn gather_roundtrip(p: &mut Proc) -> Vec<i64> {
    // Gather to root, transform, scatter back.
    let c = p.comm_world();
    let mine = i32s_to_bytes(&[c.rank() as i32 * 3]);
    let gathered = p.gather(&mine, 0, &c);
    let send = if c.rank() == 0 {
        let vals: Vec<i32> = bytes_to_i32s(&gathered.unwrap())
            .iter()
            .map(|v| v + 7)
            .collect();
        i32s_to_bytes(&vals)
    } else {
        Vec::new()
    };
    let back = p.scatter(&send, 0, &c);
    bytes_to_i32s(&back).into_iter().map(i64::from).collect()
}

fn gather_roundtrip_expect(rank: usize, _size: usize) -> Vec<i64> {
    vec![rank as i64 * 3 + 7]
}

/// Run the full validation suite: every kernel, instrumented and
/// uninstrumented, outputs compared.
pub fn run_validation(nprocs: usize) -> Vec<KernelResult> {
    let mut results = Vec::new();
    for (name, kernel, expect) in kernels() {
        let config = SimConfig::with_procs(nprocs);
        let (_, plain) = ats_mpi::run_collect(config.clone().uninstrumented(), kernel);
        let (_, instrumented) = ats_mpi::run_collect(config, kernel);
        let expected: Vec<Vec<i64>> = (0..nprocs).map(|r| expect(r, nprocs)).collect();
        results.push(KernelResult {
            name: name.to_owned(),
            correct_plain: plain == expected,
            correct_instrumented: instrumented == expected,
            outputs_equal: plain == instrumented,
        });
    }
    results
}

/// Shared-memory validation: OpenMP-substrate kernels with closed-form
/// answers, run instrumented and uninstrumented (the OpenMP half of the
/// paper's ch. 2 procedure; it notes no OpenMP validation suites existed
/// in 2002 — this is ours).
pub fn run_omp_validation(nthreads: usize) -> Vec<KernelResult> {
    use ats_omp::{parallel, run_omp, OmpConfig, Schedule};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicI64, Ordering};

    let mut results = Vec::new();

    // Kernel 1: worksharing sum of 0..N over all schedules.
    for (label, schedule) in [
        ("omp_sum_static", Schedule::Static(None)),
        ("omp_sum_dynamic", Schedule::Dynamic(3)),
        ("omp_sum_guided", Schedule::Guided(2)),
    ] {
        let n = 100usize;
        let expected = vec![vec![(n as i64 - 1) * n as i64 / 2]];
        let body = move |instrumented: bool| -> Vec<i64> {
            let total = AtomicI64::new(0);
            let config = OmpConfig {
                instrumented,
                ..Default::default()
            };
            run_omp(config, |m| {
                parallel(m, nthreads, |th| {
                    th.for_loop(n, schedule, |_, i| {
                        total.fetch_add(i as i64, Ordering::Relaxed);
                    });
                });
            });
            vec![total.load(Ordering::Relaxed)]
        };
        let plain = vec![body(false)];
        let instrumented = vec![body(true)];
        results.push(KernelResult {
            name: label.to_owned(),
            correct_plain: plain == expected,
            correct_instrumented: instrumented == expected,
            outputs_equal: plain == instrumented,
        });
    }

    // Kernel 2: team reduction.
    {
        let expected = vec![vec![(nthreads * (nthreads + 1) / 2) as i64]];
        let body = move |instrumented: bool| -> Vec<i64> {
            let out = Mutex::new(0i64);
            let config = OmpConfig {
                instrumented,
                ..Default::default()
            };
            run_omp(config, |m| {
                parallel(m, nthreads, |th| {
                    let sum = th.team_reduce((th.thread_num() + 1) as f64, |a, b| a + b);
                    if th.thread_num() == 0 {
                        *out.lock() = sum as i64;
                    }
                });
            });
            let value = *out.lock();
            vec![value]
        };
        let plain = vec![body(false)];
        let instrumented = vec![body(true)];
        results.push(KernelResult {
            name: "omp_team_reduce".to_owned(),
            correct_plain: plain == expected,
            correct_instrumented: instrumented == expected,
            outputs_equal: plain == instrumented,
        });
    }

    // Kernel 3: critical-section counter (serialization correctness).
    {
        let reps = 5usize;
        let expected = vec![vec![(nthreads * reps) as i64]];
        let body = move |instrumented: bool| -> Vec<i64> {
            let counter = AtomicI64::new(0);
            let config = OmpConfig {
                instrumented,
                ..Default::default()
            };
            run_omp(config, |m| {
                parallel(m, nthreads, |th| {
                    for _ in 0..reps {
                        th.critical("vcount", |_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            vec![counter.load(Ordering::Relaxed)]
        };
        let plain = vec![body(false)];
        let instrumented = vec![body(true)];
        results.push(KernelResult {
            name: "omp_critical_count".to_owned(),
            correct_plain: plain == expected,
            correct_instrumented: instrumented == expected,
            outputs_equal: plain == instrumented,
        });
    }

    results
}

/// Overhead measurement: wall-clock time of a real-work kernel run
/// uninstrumented vs. instrumented (the paper's benchmark-suite-based
/// overhead procedure).
#[derive(Debug, Clone, Serialize)]
pub struct OverheadResult {
    /// Wall time without tracing.
    pub plain_secs: f64,
    /// Wall time with tracing.
    pub instrumented_secs: f64,
    /// Events recorded by the instrumented run.
    pub events: usize,
}

impl OverheadResult {
    /// Relative slowdown (1.0 = free instrumentation).
    pub fn slowdown(&self) -> f64 {
        if self.plain_secs <= 0.0 {
            1.0
        } else {
            self.instrumented_secs / self.plain_secs
        }
    }
}

/// Measure instrumentation overhead with `reps` repetitions of a
/// work+barrier+exchange loop under real (calibrated busy) work.
pub fn measure_overhead(nprocs: usize, work_per_step: VDur, reps: usize) -> OverheadResult {
    let body = move |p: &mut Proc| {
        let c = p.comm_world();
        for i in 0..reps {
            p.do_work(work_per_step);
            if c.size() > 1 {
                let peer = (c.rank() + 1) % c.size();
                let from = (c.rank() + c.size() - 1) % c.size();
                let mut req = p.isend(&[i as u8], peer, 9, &c);
                let _ = p.recv(from, 9, &c);
                p.wait(&mut req);
            }
            p.barrier(&c);
        }
    };
    let rate = ats_runtime::work::calibrate();
    let mut config = SimConfig::with_procs(nprocs).real_work();
    config.calibration = Some(rate);

    let t0 = Instant::now();
    let _ = ats_mpi::run(config.clone().uninstrumented(), body);
    let plain = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let trace = ats_mpi::run(config, body);
    let instrumented = t1.elapsed().as_secs_f64();

    OverheadResult {
        plain_secs: plain,
        instrumented_secs: instrumented,
        events: trace.num_events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_suite_passes_at_several_scales() {
        for nprocs in [1, 2, 4, 7] {
            for r in run_validation(nprocs) {
                assert!(
                    r.passed(),
                    "kernel {} failed at {nprocs} procs: {r:?}",
                    r.name
                );
            }
        }
    }

    #[test]
    fn kernel_expectations_are_internally_consistent() {
        // Spot-check the closed forms at small sizes.
        assert_eq!(ring_pass_expect(0, 4), vec![1 + 1 + 2 + 3]);
        assert_eq!(ring_pass_expect(2, 4), vec![1 + 1 + 2]);
        assert_eq!(allreduce_sum_expect(0, 3), vec![6, 6]);
        assert_eq!(prefix_scan_expect(2, 4), vec![6]);
        assert_eq!(gather_roundtrip_expect(3, 4), vec![16]);
    }

    #[test]
    fn omp_validation_suite_passes() {
        for threads in [1, 2, 4] {
            for r in run_omp_validation(threads) {
                assert!(
                    r.passed(),
                    "OMP kernel {} failed at {threads} threads: {r:?}",
                    r.name
                );
            }
        }
    }

    #[test]
    fn overhead_measurement_runs_and_reports() {
        let result = measure_overhead(2, VDur::from_millis(2), 5);
        assert!(result.events > 0);
        assert!(result.plain_secs > 0.0);
        assert!(
            result.slowdown() > 0.1,
            "sane slowdown: {}",
            result.slowdown()
        );
    }
}
