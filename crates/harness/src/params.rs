//! Typed parameter values for property-function invocations.
//!
//! The paper's generated test programs "read the necessary property
//! parameters from the command line"; this module is that command line:
//! `key=value` tokens validated against the catalog's
//! [`ParamSpec`](ats_core::ParamSpec)s, with
//! defaults filled in.

use ats_core::{Distr, ParamKind, PropertySpec};
use std::collections::BTreeMap;
use std::fmt;

/// One parsed parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Work amount in seconds.
    Seconds(f64),
    /// Count (reps, root, threads, ...).
    Count(usize),
    /// A distribution.
    Distr(Distr),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Seconds(s) => write!(f, "{s}"),
            ParamValue::Count(c) => write!(f, "{c}"),
            ParamValue::Distr(d) => write!(f, "{d}"),
        }
    }
}

/// Errors from parameter parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// A token was not `key=value`.
    Malformed(String),
    /// The key is not a parameter of this property.
    UnknownKey(String),
    /// The value failed to parse under the parameter's kind.
    BadValue { key: String, value: String },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Malformed(t) => write!(f, "malformed parameter `{t}` (expected key=value)"),
            ParamError::UnknownKey(k) => write!(f, "unknown parameter `{k}`"),
            ParamError::BadValue { key, value } => {
                write!(f, "bad value `{value}` for parameter `{key}`")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// A complete, validated parameter assignment for one property function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamValues {
    values: BTreeMap<String, ParamValue>,
}

impl ParamValues {
    /// Build from `key=value` tokens, validating against `spec` and
    /// filling unspecified parameters with their catalog defaults.
    pub fn from_args(spec: &PropertySpec, args: &[&str]) -> Result<Self, ParamError> {
        let mut values = BTreeMap::new();
        // Defaults first.
        for p in spec.params {
            values.insert(
                p.name.to_owned(),
                parse_value(p.kind, p.default).expect("catalog defaults are valid"),
            );
        }
        for token in args {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| ParamError::Malformed((*token).to_owned()))?;
            // Distribution specs contain '=' inside; re-join for df.
            let param = spec
                .params
                .iter()
                .find(|p| p.name == k)
                .ok_or_else(|| ParamError::UnknownKey(k.to_owned()))?;
            let value = parse_value(param.kind, v).ok_or_else(|| ParamError::BadValue {
                key: k.to_owned(),
                value: v.to_owned(),
            })?;
            values.insert(k.to_owned(), value);
        }
        Ok(ParamValues { values })
    }

    /// Defaults only.
    pub fn defaults(spec: &PropertySpec) -> Self {
        Self::from_args(spec, &[]).expect("defaults are valid")
    }

    /// Override one parameter (used by sweeps).
    pub fn set(&mut self, key: &str, value: ParamValue) {
        self.values.insert(key.to_owned(), value);
    }

    /// Fetch a seconds parameter.
    pub fn seconds(&self, key: &str) -> f64 {
        match self.values.get(key) {
            Some(ParamValue::Seconds(s)) => *s,
            other => panic!("parameter `{key}` is not seconds: {other:?}"),
        }
    }

    /// Fetch a count parameter.
    pub fn count(&self, key: &str) -> usize {
        match self.values.get(key) {
            Some(ParamValue::Count(c)) => *c,
            other => panic!("parameter `{key}` is not a count: {other:?}"),
        }
    }

    /// Fetch a distribution parameter.
    pub fn distr(&self, key: &str) -> Distr {
        match self.values.get(key) {
            Some(ParamValue::Distr(d)) => d.clone(),
            other => panic!("parameter `{key}` is not a distribution: {other:?}"),
        }
    }

    /// Render back to the command-line syntax (sorted by key).
    pub fn to_cli(&self) -> String {
        self.values
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ParamValue)> {
        self.values.iter()
    }
}

fn parse_value(kind: ParamKind, s: &str) -> Option<ParamValue> {
    match kind {
        ParamKind::Seconds => s
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .map(ParamValue::Seconds),
        ParamKind::Count => s.parse::<usize>().ok().map(ParamValue::Count),
        ParamKind::Distribution => s.parse::<Distr>().ok().map(ParamValue::Distr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::catalog;

    #[test]
    fn defaults_fill_everything() {
        let spec = catalog::find("late_sender").unwrap();
        let v = ParamValues::defaults(spec);
        assert_eq!(v.seconds("basework"), 0.01);
        assert_eq!(v.seconds("extrawork"), 0.04);
        assert_eq!(v.count("r"), 3);
    }

    #[test]
    fn overrides_apply() {
        let spec = catalog::find("late_sender").unwrap();
        let v = ParamValues::from_args(spec, &["extrawork=0.1", "r=7"]).unwrap();
        assert_eq!(v.seconds("extrawork"), 0.1);
        assert_eq!(v.count("r"), 7);
        assert_eq!(v.seconds("basework"), 0.01, "untouched default");
    }

    #[test]
    fn distribution_values_parse_with_inner_equals() {
        let spec = catalog::find("imbalance_at_mpi_barrier").unwrap();
        let v = ParamValues::from_args(spec, &["df=peak:low=0.01,high=0.2,n=3"]).unwrap();
        assert_eq!(v.distr("df"), Distr::peak(0.01, 0.2, 3));
    }

    #[test]
    fn errors_are_specific() {
        let spec = catalog::find("late_sender").unwrap();
        assert!(matches!(
            ParamValues::from_args(spec, &["nonsense"]),
            Err(ParamError::Malformed(_))
        ));
        assert!(matches!(
            ParamValues::from_args(spec, &["bogus=1"]),
            Err(ParamError::UnknownKey(_))
        ));
        assert!(matches!(
            ParamValues::from_args(spec, &["r=notanumber"]),
            Err(ParamError::BadValue { .. })
        ));
        assert!(matches!(
            ParamValues::from_args(spec, &["basework=-1"]),
            Err(ParamError::BadValue { .. })
        ));
    }

    #[test]
    fn cli_roundtrip() {
        let spec = catalog::find("imbalance_at_mpi_barrier").unwrap();
        let v = ParamValues::from_args(spec, &["df=linear:low=0.01,high=0.05", "r=4"]).unwrap();
        let cli = v.to_cli();
        let tokens: Vec<&str> = cli.split(' ').collect();
        let v2 = ParamValues::from_args(spec, &tokens).unwrap();
        assert_eq!(v, v2);
    }
}
