//! The validation/benchmark-suite resource collection (paper Chapter 2).
//!
//! The paper's semantics-preservation strategy leans on *existing*
//! validation and benchmark suites, and commits to publishing "a WWW
//! collection of resources and links" on the APART site. This module is
//! that collection as structured data: every suite the paper lists, with
//! its category and role, plus the applications chapter's starting points.
//! (`ats-harness::validation` provides the executable substitute that runs
//! against the simulated substrates; this catalog documents what a port to
//! a real MPI/OpenMP stack would plug in.)

use serde::Serialize;

/// What a resource is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ResourceKind {
    /// Correctness validation suite (run with/without instrumentation).
    Validation,
    /// Benchmark suite (overhead estimation; some also self-check).
    Benchmark,
    /// Full application / procurement benchmark collection (ch. 4 tier).
    Application,
}

/// Which programming paradigm a resource covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Paradigm {
    /// Message passing (MPI).
    Mpi,
    /// PVM.
    Pvm,
    /// OpenMP.
    OpenMp,
    /// Hybrid MPI × threads.
    Hybrid,
    /// Whole applications (any paradigm).
    Applications,
}

/// One catalog entry, as the paper lists it.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Resource {
    /// Suite name.
    pub name: &'static str,
    /// Maintainer/origin, as named in the paper.
    pub origin: &'static str,
    /// URL from the paper (2002-era; kept for provenance).
    pub url: &'static str,
    /// Role in tool testing.
    pub kind: ResourceKind,
    /// Paradigm covered.
    pub paradigm: Paradigm,
}

/// The paper's §2 + ch. 4 collection.
pub const RESOURCES: &[Resource] = &[
    // §2.1 MPI validation suites
    Resource {
        name: "MPICH test suite",
        origin: "Argonne National Laboratory",
        url: "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/mpich-test.tar.gz",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Mpi,
    },
    Resource {
        name: "MPI test suite",
        origin: "IBM",
        url: "http://www-unix.mcs.anl.gov/mpi/mpi-test/ibmsuite.html",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Mpi,
    },
    Resource {
        name: "MPICH version of the IBM test suite",
        origin: "Argonne and IBM",
        url: "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/mpichibm.tar",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Mpi,
    },
    Resource {
        name: "Comprehensive test suite for MPI 1.1",
        origin: "Intel",
        url: "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/intel-mpitest.tgz",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Mpi,
    },
    Resource {
        name: "MPICH version of the Intel test suite",
        origin: "Argonne and Intel",
        url: "ftp://ftp.mcs.anl.gov/pub/mpi/mpi-test/intel-mpitest-patched.tgz",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Mpi,
    },
    // §2.2 MPI benchmark suites
    Resource {
        name: "PARKBENCH",
        origin: "netlib",
        url: "http://www.netlib.org/parkbench/",
        kind: ResourceKind::Benchmark,
        paradigm: Paradigm::Mpi,
    },
    Resource {
        name: "PMB (Pallas MPI Benchmarks)",
        origin: "Pallas",
        url: "http://www.pallas.com/e/products/pmb/",
        kind: ResourceKind::Benchmark,
        paradigm: Paradigm::Mpi,
    },
    Resource {
        name: "SKaMPI",
        origin: "Universität Karlsruhe",
        url: "http://liinwww.ira.uka.de/~skampi/",
        kind: ResourceKind::Benchmark,
        paradigm: Paradigm::Mpi,
    },
    // §2.3 PVM
    Resource {
        name: "PVM test suite",
        origin: "Oak Ridge National Laboratory",
        url: "http://www.epm.ornl.gov/pvm/tester.html",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Pvm,
    },
    Resource {
        name: "Grindstone",
        origin: "University of Maryland",
        url: "http://www.cs.umd.edu/~hollings/papers/grindstone.html",
        kind: ResourceKind::Validation,
        paradigm: Paradigm::Pvm,
    },
    // §2.5 OpenMP benchmarks (the paper notes no OpenMP validation suites existed)
    Resource {
        name: "EPCC OpenMP Microbenchmarks",
        origin: "EPCC, University of Edinburgh",
        url: "http://www.epcc.ed.ac.uk/research/openmpbench/openmp_index.html",
        kind: ResourceKind::Benchmark,
        paradigm: Paradigm::OpenMp,
    },
    // §2.6 hybrid
    Resource {
        name: "LAMB (Los Alamos MicroBenchmarks)",
        origin: "Los Alamos National Laboratory",
        url: "http://www.c3.lanl.gov/par_arch/CODES/LAMB/lamb.html",
        kind: ResourceKind::Benchmark,
        paradigm: Paradigm::Hybrid,
    },
    // ch. 4 application starting points
    Resource {
        name: "NAS Parallel Benchmarks (NPB)",
        origin: "NASA Ames",
        url: "http://www.nas.nasa.gov/Software/NPB/",
        kind: ResourceKind::Application,
        paradigm: Paradigm::Applications,
    },
    Resource {
        name: "ASCI Purple Benchmark Codes",
        origin: "LLNL",
        url: "http://www.llnl.gov/asci/purple/benchmarks/limited/code_list.html",
        kind: ResourceKind::Application,
        paradigm: Paradigm::Applications,
    },
    Resource {
        name: "ASCI Blue Benchmark Codes",
        origin: "LLNL",
        url: "http://www.llnl.gov/asci_benchmarks/asci/asci_code_list.html",
        kind: ResourceKind::Application,
        paradigm: Paradigm::Applications,
    },
];

/// All resources of a kind.
pub fn by_kind(kind: ResourceKind) -> Vec<&'static Resource> {
    RESOURCES.iter().filter(|r| r.kind == kind).collect()
}

/// Render the collection as the paper's chapter-2 style listing.
pub fn render() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (kind, title) in [
        (ResourceKind::Validation, "Validation suites"),
        (ResourceKind::Benchmark, "Benchmark suites"),
        (ResourceKind::Application, "Application collections (ch. 4)"),
    ] {
        let _ = writeln!(out, "{title}:");
        for r in by_kind(kind) {
            let _ = writeln!(out, "  {:<42} {:<32} {}", r.name, r.origin, r.url);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_matches_the_papers_counts() {
        // 5 MPI validation (+Sun patch note omitted: not a suite), 3 MPI
        // benchmarks, 2 PVM, 1 OpenMP benchmark, 1 hybrid, 3 application
        // collections.
        assert_eq!(RESOURCES.len(), 15);
        assert_eq!(by_kind(ResourceKind::Validation).len(), 7);
        assert_eq!(by_kind(ResourceKind::Benchmark).len(), 5);
        assert_eq!(by_kind(ResourceKind::Application).len(), 3);
    }

    #[test]
    fn no_openmp_validation_suite_as_the_paper_notes() {
        // "To the best of our knowledge there are no OpenMP validation
        // suites yet" (paper §2.4).
        assert!(!by_kind(ResourceKind::Validation)
            .iter()
            .any(|r| r.paradigm == Paradigm::OpenMp));
    }

    #[test]
    fn render_lists_every_resource() {
        let text = render();
        for r in RESOURCES {
            assert!(text.contains(r.name), "missing {}", r.name);
        }
    }
}
