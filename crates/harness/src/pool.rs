//! A bounded worker pool for independent, index-addressed tasks.
//!
//! The experiment engine runs sweep configurations concurrently, but every
//! configuration itself spawns `nprocs` virtual-rank threads inside
//! [`ats_mpi::run`]. Naively multiplying the two axes oversubscribes the
//! host, so the pool couples a work-stealing index queue (crossbeam scoped
//! threads + an atomic cursor) with an explicit *thread budget*:
//! `jobs × threads_per_task ≤ budget`. Results come back in submission
//! (index) order regardless of completion order, which is what makes
//! parallel sweeps byte-identical to serial ones.

use ats_runtime::SimBackend;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// The host's available parallelism (1 if it cannot be queried).
pub fn auto_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default thread budget for the oversubscription guard.
///
/// Rank threads spend most of their life blocked on virtual-time
/// synchronization (condvars in the mailboxes), so the budget is a
/// multiple of the hardware parallelism rather than equal to it; the
/// floor keeps small hosts able to run at least one wide configuration
/// next to a few narrow ones.
pub fn default_thread_budget() -> usize {
    (auto_jobs() * 8).max(32)
}

/// OS threads one configuration occupies under `backend`.
///
/// The thread backend parks one OS thread per simulated rank, so a wide
/// configuration eats `nprocs` budget slots. The discrete-event backend
/// multiplexes every rank coroutine onto the worker's own thread, so an
/// event-scheduled world counts as **one** slot no matter how many ranks
/// it simulates — which is what lets a sweep run 10k-rank configurations
/// at full `jobs` width.
pub fn threads_per_config(backend: SimBackend, nprocs: usize) -> usize {
    match backend.effective() {
        SimBackend::Thread => nprocs.max(1),
        SimBackend::Event => 1,
    }
}

/// Clamp a requested worker count so `jobs × threads_per_task` stays
/// within `budget`. `requested == 0` means "use [`auto_jobs`]".
pub fn effective_jobs(requested: usize, threads_per_task: usize, budget: usize) -> usize {
    let requested = if requested == 0 {
        auto_jobs()
    } else {
        requested
    };
    let per_task = threads_per_task.max(1);
    requested.clamp(1, (budget / per_task).max(1))
}

/// Run `f(0..n)` on up to `jobs` workers and return the results in index
/// order. Workers claim indices from a shared atomic cursor, so long tasks
/// do not convoy short ones; a `jobs <= 1` request takes a serial fast
/// path with no threads at all. Panics in `f` propagate to the caller.
pub fn run_indexed<T, F>(jobs: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(jobs, n, None, f)
}

/// [`run_indexed`], recording pool metrics into `obs` when given: task
/// count and per-task queue-wait/run-time histograms, busy vs. wall
/// nanoseconds, and the worker-count high-water gauge. Results are
/// identical to the unobserved call.
pub fn run_indexed_with<T, F>(jobs: usize, n: usize, obs: Option<ats_obs::Handle>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    let started = Instant::now();
    // Wrap the task to time it; queue wait is the gap between pool start
    // (all indices are enqueued up front) and the moment a worker claims
    // the index.
    let timed = |i: usize| {
        let claimed = Instant::now();
        let out = f(i);
        if let Some(obs) = &obs {
            obs.pool.tasks.inc();
            obs.pool.queue_wait.observe(claimed.duration_since(started));
            let run = claimed.elapsed();
            obs.pool.task_time.observe(run);
            obs.pool.busy_ns.add(run.as_nanos() as u64);
        }
        out
    };
    if let Some(obs) = &obs {
        obs.pool.jobs_occupancy.set_max(jobs as u64);
    }
    let result = if jobs == 1 {
        (0..n).map(timed).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        crossbeam::thread::scope(|s| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let cursor = &cursor;
                let timed = &timed;
                s.spawn(move |_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = timed(i);
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
        })
        .expect("worker thread panicked");
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, out) in rx {
            slots[i] = Some(out);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index completed"))
            .collect()
    };
    if let Some(obs) = &obs {
        obs.pool.wall_ns.add(started.elapsed().as_nanos() as u64);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Make later indices finish first by sleeping inversely.
        let out = run_indexed(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_millis(((16 - i) % 5) as u64));
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel_path() {
        let serial = run_indexed(1, 9, |i| i * i);
        let parallel = run_indexed(8, 9, |i| i * i);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = run_indexed(6, 100, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<usize> = run_indexed(8, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscription_guard_budgets_jobs_times_nprocs() {
        // 32-thread budget, 8 ranks per config: at most 4 workers.
        assert_eq!(effective_jobs(16, 8, 32), 4);
        // Never below one worker, even when one config exceeds the budget.
        assert_eq!(effective_jobs(16, 64, 32), 1);
        // Zero requests auto-detect but still respect the budget.
        assert!(effective_jobs(0, 1, 32) >= 1);
        // Small requests pass through untouched.
        assert_eq!(effective_jobs(2, 4, 32), 2);
    }

    #[test]
    fn event_backend_configs_occupy_one_slot() {
        assert_eq!(threads_per_config(SimBackend::Thread, 8), 8);
        assert_eq!(threads_per_config(SimBackend::Thread, 0), 1);
        // The event scheduler multiplexes all ranks onto the worker thread.
        assert_eq!(threads_per_config(SimBackend::Event, 8), 1);
        assert_eq!(threads_per_config(SimBackend::Event, 8192), 1);
        // So the guard no longer clamps wide configs under the event backend.
        assert_eq!(
            effective_jobs(16, threads_per_config(SimBackend::Event, 8192), 32),
            16
        );
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panics_propagate() {
        run_indexed(2, 4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }
}
