//! The unified [`Session`] API: one builder owning run options, analyzer
//! configuration and observability together.
//!
//! Before sessions, every caller (bins, the fuzzer, the experiment
//! engine, examples) assembled the same three structs by hand —
//! [`RunOpts`], [`AnalyzerConfig`](ats_analyzer::AnalyzerConfig) and
//! [`ObsConfig`](ats_obs::ObsConfig) — and had to remember to thread the
//! same observability [`Handle`](ats_obs::Handle) through all of them.
//! A [`Session`] materializes the handle once at [`SessionBuilder::build`]
//! and injects it everywhere, so metrics from the simulator, the codec,
//! the worker pool, the analyzer and the fuzzer all land in one registry,
//! exportable as Prometheus text ([`Session::prometheus`]) or a JSON run
//! manifest ([`Session::manifest`]).
//!
//! ```
//! use ats_harness::{ParamValues, Session};
//!
//! let session = Session::builder().procs(4).seed(7).build();
//! let spec = ats_harness::spec_of("late_sender").unwrap();
//! let params = ParamValues::defaults(spec);
//! let (_, report) = session.run_and_analyze("late_sender", &params).unwrap();
//! assert!(report.severity_of("LateSender") > 0.0);
//! ```

use crate::experiment::Experiment;
use crate::params::ParamValues;
use crate::registry::{run_single, RunError, RunOpts};
use ats_analyzer::{analyze, AnalysisReport, AnalyzerConfig};
use ats_obs::{build_manifest, prometheus, Handle, ObsConfig, RunManifest};
use ats_store::{Cache, CacheMode, Store};
use ats_trace::Trace;
use std::path::PathBuf;
use std::time::Instant;

/// Builder for a [`Session`]. Every knob the old three-struct surface
/// exposed is reachable here; [`SessionBuilder::build`] materializes the
/// observability handle and threads it through all owned configs.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    opts: RunOpts,
    analyzer: AnalyzerConfig,
    obs: ObsConfig,
    cache_mode: CacheMode,
    cache_dir: Option<PathBuf>,
}

impl SessionBuilder {
    /// Set the MPI process count.
    pub fn procs(mut self, n: usize) -> Self {
        self.opts.nprocs = n;
        self
    }

    /// Set the experiment/fuzz worker count (`0` = auto).
    pub fn jobs(mut self, n: usize) -> Self {
        self.opts.jobs = n;
        self
    }

    /// Select the rank-execution backend (discrete-event coroutines by
    /// default; one OS thread per rank with
    /// [`SimBackend::Thread`](ats_runtime::SimBackend::Thread)).
    pub fn backend(mut self, backend: ats_runtime::SimBackend) -> Self {
        self.opts.backend = backend;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Cap total simulated-rank threads across workers.
    pub fn thread_budget(mut self, budget: usize) -> Self {
        self.opts.thread_budget = Some(budget);
        self
    }

    /// Use the realistic (non-zero) machine model with init/finalize
    /// costs.
    pub fn realistic(mut self) -> Self {
        self.opts = self.opts.realistic();
        self
    }

    /// Set the analyzer's reporting threshold.
    pub fn threshold(mut self, t: f64) -> Self {
        self.analyzer.threshold = t;
        self
    }

    /// Report MPI init/finalize overhead as a property.
    pub fn with_setup_overhead(mut self) -> Self {
        self.analyzer.report_setup_overhead = true;
        self
    }

    /// Replace the run options wholesale (escape hatch for knobs without
    /// a dedicated builder method).
    pub fn opts(mut self, opts: RunOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Replace the analyzer configuration wholesale.
    pub fn analyzer(mut self, analyzer: AnalyzerConfig) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Set the observability configuration (default: fully off).
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Set the result-cache mode (default [`CacheMode::Off`]). In `ro`
    /// and `rw` modes, experiments launched through the session replay
    /// already-stored configurations from the artifact store; `rw`
    /// additionally publishes newly executed ones.
    pub fn cache(mut self, mode: CacheMode) -> Self {
        self.cache_mode = mode;
        self
    }

    /// Override the store root (default [`ats_store::DEFAULT_DIR`],
    /// relative to the working directory). Only meaningful with a
    /// non-`off` [`SessionBuilder::cache`] mode.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Materialize the session: resolve the observability handle once and
    /// inject it into the run options, the analyzer config and the
    /// result cache. Opening the store cannot fail the build: an
    /// unopenable store root degrades to cache-off (campaigns must run
    /// even when the cache directory is unavailable).
    pub fn build(self) -> Session {
        let handle = self.obs.handle();
        let mut opts = self.opts;
        let mut analyzer = self.analyzer;
        opts.obs = handle.clone();
        analyzer.obs = handle.clone();
        let cache = if self.cache_mode == CacheMode::Off {
            None
        } else {
            let root = self
                .cache_dir
                .unwrap_or_else(|| PathBuf::from(ats_store::DEFAULT_DIR));
            Store::open(&root)
                .ok()
                .map(|store| Cache {
                    store: store.with_obs(handle.clone()),
                    mode: self.cache_mode,
                })
        };
        Session {
            opts,
            analyzer,
            handle,
            cache,
            started: Instant::now(),
        }
    }
}

/// A configured suite session: the single entry point for running
/// properties, analyzing traces, sweeping experiments and exporting the
/// observability state they all share.
#[derive(Debug, Clone)]
pub struct Session {
    opts: RunOpts,
    analyzer: AnalyzerConfig,
    handle: Option<Handle>,
    cache: Option<Cache>,
    started: Instant,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Start building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The run options this session executes with (observability handle
    /// already injected).
    pub fn opts(&self) -> &RunOpts {
        &self.opts
    }

    /// The analyzer configuration this session analyzes with.
    pub fn analyzer_config(&self) -> &AnalyzerConfig {
        &self.analyzer
    }

    /// The shared observability handle (`None` when observability is
    /// off).
    pub fn obs(&self) -> Option<&Handle> {
        self.handle.as_ref()
    }

    /// The result cache experiments launched from this session consult
    /// (`None` when caching is off or the store root was unopenable).
    pub fn result_cache(&self) -> Option<&Cache> {
        self.cache.as_ref()
    }

    /// Execute the single-property test program `name` with `params`.
    pub fn run(&self, name: &str, params: &ParamValues) -> Result<Trace, RunError> {
        run_single(name, params, &self.opts)
    }

    /// Analyze a trace with this session's analyzer configuration.
    pub fn analyze(&self, trace: &Trace) -> AnalysisReport {
        analyze(trace, &self.analyzer)
    }

    /// [`Session::run`] then [`Session::analyze`].
    pub fn run_and_analyze(
        &self,
        name: &str,
        params: &ParamValues,
    ) -> Result<(Trace, AnalysisReport), RunError> {
        let trace = self.run(name, params)?;
        let report = self.analyze(&trace);
        Ok((trace, report))
    }

    /// An [`Experiment`] over `property` pre-seeded with this session's
    /// run options, analyzer configuration and result cache.
    pub fn experiment(&self, property: &str) -> Experiment {
        let exp = Experiment::new(property)
            .opts(self.opts.clone())
            .analyzer(self.analyzer.clone());
        match &self.cache {
            Some(c) => exp.cache(c.clone()),
            None => exp,
        }
    }

    /// The session's workload configuration as JSON for manifests:
    /// everything that determines *results* (seed, procs, model choice,
    /// threshold), deliberately excluding execution details (`jobs`,
    /// thread budget) so manifests diff clean across worker counts. The
    /// rank-execution backend *is* recorded — results are identical
    /// either way, but knowing how a run was hosted matters when reading
    /// its runtime section.
    pub fn config_json(&self) -> serde_json::Value {
        serde_json::json!({
            "nprocs": self.opts.nprocs,
            "backend": self.opts.backend.effective().label(),
            "seed": self.opts.seed,
            "work_mode": format!("{:?}", self.opts.work_mode),
            "zero_model": self.opts.model == ats_runtime::MachineModel::zero(),
            "threshold": self.analyzer.threshold,
            "report_setup_overhead": self.analyzer.report_setup_overhead,
        })
    }

    /// Prometheus text exposition of the session's registry (`None` when
    /// observability is off).
    pub fn prometheus(&self) -> Option<String> {
        self.handle.as_ref().map(|h| prometheus(h))
    }

    /// A JSON run manifest labeled `label`, snapshotting the session's
    /// registry and wall time (`None` when observability is off).
    pub fn manifest(&self, label: &str) -> Option<RunManifest> {
        self.handle.as_ref().map(|h| {
            build_manifest(
                label,
                self.config_json(),
                h,
                self.started.elapsed().as_secs_f64(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn late_sender_params() -> ParamValues {
        ParamValues::defaults(crate::registry::spec_of("late_sender").unwrap())
    }

    #[test]
    fn session_runs_and_analyzes_like_the_loose_parts() {
        let session = Session::builder().procs(4).seed(11).build();
        let (trace, report) = session
            .run_and_analyze("late_sender", &late_sender_params())
            .unwrap();
        // Identical to assembling RunOpts/AnalyzerConfig by hand.
        let mut opts = RunOpts::default().procs(4);
        opts.seed = 11;
        let loose = run_single("late_sender", &late_sender_params(), &opts).unwrap();
        assert_eq!(trace.num_events(), loose.num_events());
        assert!(report.severity_of("LateSender") > 0.0);
    }

    #[test]
    fn obs_off_session_has_no_handle_or_exports() {
        let session = Session::builder().build();
        assert!(session.obs().is_none());
        assert!(session.prometheus().is_none());
        assert!(session.manifest("unit").is_none());
    }

    #[test]
    fn obs_on_session_shares_one_handle_everywhere() {
        let session = Session::builder().procs(2).obs(ObsConfig::fresh()).build();
        let h = session.obs().unwrap().clone();
        assert!(session
            .opts()
            .obs
            .as_ref()
            .is_some_and(|o| o.same_registry(&h)));
        assert!(session
            .analyzer_config()
            .obs
            .as_ref()
            .is_some_and(|o| o.same_registry(&h)));
        let (_, _) = session
            .run_and_analyze("late_sender", &late_sender_params())
            .unwrap();
        assert!(h.mpi.runs.get() >= 1);
        assert!(h.mpi.events.get() > 0);
        assert_eq!(h.analyzer.analyses.get(), 1);
        let text = session.prometheus().unwrap();
        assert!(text.contains("ats_mpisim_events_total"));
        let manifest = session.manifest("unit").unwrap();
        assert!(manifest.metrics["ats_mpisim_events_total"] > 0);
    }

    #[test]
    fn config_json_excludes_execution_details() {
        let session = Session::builder().procs(4).jobs(8).build();
        let cfg = session.config_json();
        assert_eq!(cfg["nprocs"], 4);
        assert_eq!(cfg["backend"], "event");
        assert!(cfg.get("jobs").is_none());
        assert!(cfg.get("thread_budget").is_none());
    }

    #[test]
    fn session_cache_wires_into_experiments() {
        let dir = ats_testutil::TempDir::new("ats-session-cache");
        let dir = dir.path();
        let session = |mode: CacheMode| {
            Session::builder()
                .procs(2)
                .cache(mode)
                .cache_dir(&dir)
                .build()
        };
        let off = Session::builder().procs(2).build();
        assert!(off.result_cache().is_none(), "caching defaults to off");
        let cold = session(CacheMode::ReadWrite);
        assert_eq!(cold.result_cache().unwrap().mode, CacheMode::ReadWrite);
        let (_, stats) = cold
            .experiment("late_sender")
            .run_with_stats()
            .unwrap();
        assert_eq!((stats.cache_mode, stats.cache_misses), ("rw", 1));
        let (_, warm) = session(CacheMode::Read)
            .experiment("late_sender")
            .run_with_stats()
            .unwrap();
        assert_eq!((warm.cache_mode, warm.cache_hits), ("ro", 1));
    }

    #[test]
    fn builder_selects_the_thread_backend() {
        use ats_runtime::SimBackend;
        let session = Session::builder()
            .procs(2)
            .backend(SimBackend::Thread)
            .build();
        assert_eq!(session.opts().backend, SimBackend::Thread);
        assert_eq!(session.config_json()["backend"], "thread");
    }
}
