//! Per-participant event recording.
//!
//! Each simulated rank/thread owns exactly one [`LocalTrace`]; recording is
//! therefore completely lock-free (the paper's measurement-perturbation
//! concern — tools must be *non-intrusive* — maps here to "recording must
//! not change virtual timestamps", which holds trivially because recording
//! takes zero virtual time).

use crate::event::{CollOp, Event, EventKind, LocationId};
use crate::region::RegionId;
use ats_runtime::VTime;

/// The event stream of a single location, under construction.
#[derive(Debug, Clone)]
pub struct LocalTrace {
    /// The owning location.
    pub location: LocationId,
    events: Vec<Event>,
    stack: Vec<RegionId>,
    /// When false, all recording calls are no-ops: this is the
    /// "uninstrumented" mode used by the semantics-preservation experiments.
    enabled: bool,
}

impl LocalTrace {
    /// Start an empty, enabled trace for `location`.
    pub fn new(location: LocationId) -> Self {
        LocalTrace {
            location,
            events: Vec::new(),
            stack: Vec::new(),
            enabled: true,
        }
    }

    /// Start an enabled trace for `location` that records into `buf`,
    /// reusing its capacity (contents are cleared). This is how a
    /// [`crate::TracePool`] hands pre-grown allocations to fresh
    /// participants between sweep configurations.
    pub fn with_buffer(location: LocationId, mut buf: Vec<Event>) -> Self {
        buf.clear();
        LocalTrace {
            location,
            events: buf,
            stack: Vec::new(),
            enabled: true,
        }
    }

    /// Start a disabled (non-recording) trace for `location`.
    pub fn disabled(location: LocationId) -> Self {
        let mut t = Self::new(location);
        t.enabled = false;
        t
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record entry into `region` at `time`.
    pub fn enter(&mut self, time: VTime, region: RegionId) {
        if !self.enabled {
            return;
        }
        self.stack.push(region);
        self.events
            .push(Event::new(time, EventKind::Enter { region }));
    }

    /// Record exit from `region` at `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `region` is not the innermost open region
    /// — unbalanced instrumentation is a bug in the substrate, not data.
    pub fn exit(&mut self, time: VTime, region: RegionId) {
        if !self.enabled {
            return;
        }
        let top = self.stack.pop();
        debug_assert_eq!(
            top,
            Some(region),
            "unbalanced region exit at {} (stack top {:?})",
            self.location,
            top
        );
        self.events
            .push(Event::new(time, EventKind::Exit { region }));
    }

    /// Record a message post.
    pub fn send(&mut self, time: VTime, to: u32, comm: u32, tag: i32, bytes: u64) {
        if !self.enabled {
            return;
        }
        self.events.push(Event::new(
            time,
            EventKind::Send {
                to,
                comm,
                tag,
                bytes,
            },
        ));
    }

    /// Record a message delivery completing at `time` for a receive posted
    /// at `posted`.
    pub fn recv(&mut self, time: VTime, from: u32, comm: u32, tag: i32, bytes: u64, posted: VTime) {
        if !self.enabled {
            return;
        }
        self.events.push(Event::new(
            time,
            EventKind::Recv {
                from,
                comm,
                tag,
                bytes,
                posted,
            },
        ));
    }

    /// Record a collective completion.
    #[allow(clippy::too_many_arguments)]
    pub fn coll_end(
        &mut self,
        time: VTime,
        op: CollOp,
        comm: u32,
        root: Option<u32>,
        seq: u64,
        bytes: u64,
        entered: VTime,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(Event::new(
            time,
            EventKind::CollEnd {
                op,
                comm,
                root,
                seq,
                bytes,
                entered,
            },
        ));
    }

    /// Depth of currently open regions.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// The currently open regions, outermost first. Forked OpenMP threads
    /// inherit this stack so their events carry full call paths.
    pub fn open_stack(&self) -> &[RegionId] {
        &self.stack
    }

    /// Number of recorded events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish recording, returning the event stream. All regions must have
    /// been exited.
    pub fn finish(self) -> (LocationId, Vec<Event>) {
        debug_assert!(
            self.stack.is_empty(),
            "location {} finished with {} open regions",
            self.location,
            self.stack.len()
        );
        (self.location, self.events)
    }

    /// Read access to the events recorded so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    #[test]
    fn records_balanced_regions() {
        let mut lt = LocalTrace::new(LocationId::rank(0));
        let r = RegionId(0);
        lt.enter(t(0), r);
        lt.exit(t(5), r);
        let (_, evs) = lt.finish();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].enter_region(), Some(r));
        assert_eq!(evs[1].exit_region(), Some(r));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut lt = LocalTrace::disabled(LocationId::rank(1));
        lt.enter(t(0), RegionId(0));
        lt.send(t(1), 2, 0, 0, 64);
        lt.exit(t(2), RegionId(0));
        assert!(lt.is_empty());
        assert!(!lt.is_enabled());
    }

    #[test]
    fn nesting_depth_tracks_stack() {
        let mut lt = LocalTrace::new(LocationId::rank(0));
        lt.enter(t(0), RegionId(0));
        lt.enter(t(1), RegionId(1));
        assert_eq!(lt.depth(), 2);
        lt.exit(t(2), RegionId(1));
        assert_eq!(lt.depth(), 1);
        lt.exit(t(3), RegionId(0));
        assert_eq!(lt.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "unbalanced region exit")]
    #[cfg(debug_assertions)]
    fn unbalanced_exit_panics_in_debug() {
        let mut lt = LocalTrace::new(LocationId::rank(0));
        lt.enter(t(0), RegionId(0));
        lt.exit(t(1), RegionId(7));
    }

    #[test]
    fn message_events_carry_metadata() {
        let mut lt = LocalTrace::new(LocationId::rank(0));
        lt.send(t(1), 3, 9, 42, 1024);
        lt.recv(t(5), 3, 9, 42, 1024, t(2));
        let (_, evs) = lt.finish();
        match evs[0].kind {
            EventKind::Send {
                to,
                comm,
                tag,
                bytes,
            } => {
                assert_eq!((to, comm, tag, bytes), (3, 9, 42, 1024));
            }
            _ => panic!("expected Send"),
        }
        match evs[1].kind {
            EventKind::Recv { posted, .. } => assert_eq!(posted, t(2)),
            _ => panic!("expected Recv"),
        }
    }
}
