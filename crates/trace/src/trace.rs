//! The merged global trace.

use crate::event::{Event, EventKind, LocationId};
use crate::region::{RegionId, RegionKind, RegionMeta, RegionTable};
use ats_runtime::{VDur, VTime};
use serde::{Deserialize, Serialize};

/// Definition record for one communicator / synchronization context: its
/// id and member locations (global ranks in communicator-rank order).
/// Real tracing systems (EPILOG, OTF) write exactly this metadata so
/// analyzers can translate communicator-local ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommDef {
    /// Run-unique communicator id (matches event `comm` fields).
    pub id: u32,
    /// Global ranks, indexed by communicator-local rank.
    pub members: Vec<u32>,
}

/// The completed event stream of one location.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LocationTrace {
    /// Which location this stream belongs to.
    pub location: LocationId,
    /// Events in recording order (time-monotone per location).
    pub events: Vec<Event>,
}

impl LocationTrace {
    /// The last event timestamp, or zero for an empty stream.
    pub fn end_time(&self) -> VTime {
        self.events.last().map(|e| e.time).unwrap_or(VTime::ZERO)
    }

    /// The first event timestamp, or zero for an empty stream.
    pub fn start_time(&self) -> VTime {
        self.events.first().map(|e| e.time).unwrap_or(VTime::ZERO)
    }
}

/// A complete merged trace: the region table plus one event stream per
/// location, ordered by location.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Interned region metadata; `RegionId(i)` indexes this vector.
    pub regions: Vec<RegionMeta>,
    /// Communicator definitions, sorted by id.
    pub comms: Vec<CommDef>,
    /// Per-location streams, sorted by `LocationId`.
    pub locations: Vec<LocationTrace>,
}

impl Trace {
    /// Assemble a trace from per-location streams (sorts by location and
    /// merges streams that share a location, e.g. OpenMP thread ids reused
    /// across successive parallel regions).
    pub fn new(regions: Vec<RegionMeta>, locations: Vec<LocationTrace>) -> Self {
        Self::with_comms(regions, Vec::new(), locations)
    }

    /// [`Trace::new`] with communicator definitions.
    pub fn with_comms(
        regions: Vec<RegionMeta>,
        mut comms: Vec<CommDef>,
        mut locations: Vec<LocationTrace>,
    ) -> Self {
        comms.sort_by_key(|c| c.id);
        comms.dedup_by_key(|c| c.id);
        locations.sort_by_key(|l| (l.location, l.events.first().map(|e| e.time)));
        let mut merged: Vec<LocationTrace> = Vec::with_capacity(locations.len());
        for lt in locations {
            match merged.last_mut() {
                Some(prev) if prev.location == lt.location => {
                    prev.events.extend(lt.events);
                }
                _ => merged.push(lt),
            }
        }
        Trace {
            regions,
            comms,
            locations: merged,
        }
    }

    /// Members of communicator `id`, if its definition was recorded.
    pub fn comm_members(&self, id: u32) -> Option<&[u32]> {
        self.comms
            .binary_search_by_key(&id, |c| c.id)
            .ok()
            .map(|i| self.comms[i].members.as_slice())
    }

    /// A [`RegionTable`] view over this trace's region metadata.
    pub fn region_table(&self) -> RegionTable {
        RegionTable::from_snapshot(self.regions.clone())
    }

    /// The name of a region id.
    pub fn region_name(&self, id: RegionId) -> &str {
        self.regions
            .get(id.0 as usize)
            .map(|m| m.name.as_str())
            .unwrap_or("<unknown>")
    }

    /// The kind of a region id.
    pub fn region_kind(&self, id: RegionId) -> Option<RegionKind> {
        self.regions.get(id.0 as usize).map(|m| m.kind)
    }

    /// Find a region id by name.
    pub fn find_region(&self, name: &str) -> Option<RegionId> {
        self.regions
            .iter()
            .position(|m| m.name == name)
            .map(|i| RegionId(i as u32))
    }

    /// Number of locations.
    pub fn num_locations(&self) -> usize {
        self.locations.len()
    }

    /// Total number of events across locations.
    pub fn num_events(&self) -> usize {
        self.locations.iter().map(|l| l.events.len()).sum()
    }

    /// The stream for `location`, if present.
    pub fn location(&self, location: LocationId) -> Option<&LocationTrace> {
        self.locations
            .binary_search_by_key(&location, |l| l.location)
            .ok()
            .map(|i| &self.locations[i])
    }

    /// Latest event time across all locations (the run's makespan).
    pub fn end_time(&self) -> VTime {
        self.locations
            .iter()
            .map(|l| l.end_time())
            .max()
            .unwrap_or(VTime::ZERO)
    }

    /// Earliest event time across all locations.
    pub fn start_time(&self) -> VTime {
        self.locations
            .iter()
            .map(|l| l.start_time())
            .min()
            .unwrap_or(VTime::ZERO)
    }

    /// Total allocation time: Σ over locations of (end − start). This is the
    /// denominator of the EXPERT severity model.
    pub fn total_alloc_time(&self) -> VDur {
        self.locations
            .iter()
            .map(|l| l.end_time() - l.start_time())
            .sum()
    }

    /// Iterate all events of all locations merged into global time order
    /// (ties broken by location, then original order).
    pub fn merged_events(&self) -> Vec<(LocationId, Event)> {
        let mut all: Vec<(LocationId, Event)> = self
            .locations
            .iter()
            .flat_map(|l| l.events.iter().map(move |e| (l.location, *e)))
            .collect();
        all.sort_by(|a, b| a.1.time.cmp(&b.1.time).then(a.0.cmp(&b.0)));
        all
    }

    /// Remap region ids so the region table is sorted by name. Two traces
    /// of the same program then compare equal even if their threads raced
    /// while interning region names.
    pub fn canonicalize(&mut self) {
        let mut order: Vec<usize> = (0..self.regions.len()).collect();
        order.sort_by(|&a, &b| self.regions[a].name.cmp(&self.regions[b].name));
        // old id -> new id
        let mut remap = vec![RegionId(0); self.regions.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = RegionId(new as u32);
        }
        self.regions = order.iter().map(|&o| self.regions[o].clone()).collect();
        for loc in &mut self.locations {
            for ev in &mut loc.events {
                match &mut ev.kind {
                    EventKind::Enter { region } | EventKind::Exit { region } => {
                        *region = remap[region.0 as usize];
                    }
                    _ => {}
                }
            }
        }
    }

    /// All distinct communicator ids appearing in message/collective events.
    pub fn communicators(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .locations
            .iter()
            .flat_map(|l| l.events.iter())
            .filter_map(|e| match e.kind {
                EventKind::Send { comm, .. }
                | EventKind::Recv { comm, .. }
                | EventKind::CollEnd { comm, .. } => Some(comm),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    fn sample() -> Trace {
        let regions = vec![RegionMeta {
            name: "work".into(),
            kind: RegionKind::Work,
        }];
        let r = RegionId(0);
        let mk = |rank: u32, t0: u64, t1: u64| LocationTrace {
            location: LocationId::rank(rank),
            events: vec![
                Event::new(t(t0), EventKind::Enter { region: r }),
                Event::new(t(t1), EventKind::Exit { region: r }),
            ],
        };
        Trace::new(regions, vec![mk(1, 2, 10), mk(0, 0, 8)])
    }

    #[test]
    fn locations_sorted_on_construction() {
        let tr = sample();
        assert_eq!(tr.locations[0].location, LocationId::rank(0));
        assert_eq!(tr.locations[1].location, LocationId::rank(1));
    }

    #[test]
    fn time_bounds_and_alloc() {
        let tr = sample();
        assert_eq!(tr.start_time(), t(0));
        assert_eq!(tr.end_time(), t(10));
        assert_eq!(tr.total_alloc_time(), VDur::from_millis(16)); // 8 + 8
    }

    #[test]
    fn lookup_by_location() {
        let tr = sample();
        assert!(tr.location(LocationId::rank(1)).is_some());
        assert!(tr.location(LocationId::rank(7)).is_none());
    }

    #[test]
    fn merged_events_time_ordered() {
        let tr = sample();
        let merged = tr.merged_events();
        assert_eq!(merged.len(), 4);
        for w in merged.windows(2) {
            assert!(w[0].1.time <= w[1].1.time);
        }
    }

    #[test]
    fn region_lookup_by_name() {
        let tr = sample();
        assert_eq!(tr.find_region("work"), Some(RegionId(0)));
        assert_eq!(tr.find_region("nope"), None);
        assert_eq!(tr.region_name(RegionId(0)), "work");
        assert_eq!(tr.region_name(RegionId(9)), "<unknown>");
    }

    #[test]
    fn empty_trace_defaults() {
        let tr = Trace::new(vec![], vec![]);
        assert_eq!(tr.end_time(), VTime::ZERO);
        assert_eq!(tr.total_alloc_time(), VDur::ZERO);
        assert!(tr.communicators().is_empty());
        assert_eq!(tr.num_events(), 0);
    }
}
