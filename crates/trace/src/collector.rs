//! Gathering per-participant streams into a global [`Trace`].

use crate::local::LocalTrace;
use crate::pool::TracePool;
use crate::region::{RegionKind, RegionTable};
use crate::trace::{CommDef, LocationTrace, Trace};
use parking_lot::Mutex;
use std::sync::Arc;

/// A thread-safe sink to which every participant submits its [`LocalTrace`]
/// exactly once, at the end of its (virtual) life.
///
/// Cloning a collector produces another handle to the same sink.
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    regions: RegionTable,
    done: Arc<Mutex<Vec<LocationTrace>>>,
    comms: Arc<Mutex<Vec<CommDef>>>,
    enabled: bool,
    pool: Option<TracePool>,
}

impl TraceCollector {
    /// A collector that records events.
    pub fn new() -> Self {
        TraceCollector {
            regions: RegionTable::new(),
            done: Arc::new(Mutex::new(Vec::new())),
            comms: Arc::new(Mutex::new(Vec::new())),
            enabled: true,
            pool: None,
        }
    }

    /// Hand out event buffers from `pool` instead of fresh vectors.
    /// Pooling only affects capacity, never recorded contents.
    pub fn with_pool(mut self, pool: TracePool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The buffer pool this collector draws from, if any.
    pub fn pool(&self) -> Option<&TracePool> {
        self.pool.as_ref()
    }

    /// A collector whose [`LocalTrace`]s are disabled — used to run the same
    /// program "uninstrumented" for the semantics-preservation experiments.
    pub fn disabled() -> Self {
        let mut c = Self::new();
        c.enabled = false;
        c
    }

    /// Whether local traces created through this collector record events.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The shared region table.
    pub fn regions(&self) -> &RegionTable {
        &self.regions
    }

    /// Convenience: intern a region name.
    pub fn intern(&self, name: &str, kind: RegionKind) -> crate::region::RegionId {
        self.regions.intern(name, kind)
    }

    /// Create the local trace for one participant, drawing its event
    /// buffer from the attached pool when one is present.
    pub fn local(&self, location: crate::event::LocationId) -> LocalTrace {
        if !self.enabled {
            return LocalTrace::disabled(location);
        }
        match &self.pool {
            Some(pool) => LocalTrace::with_buffer(location, pool.take()),
            None => LocalTrace::new(location),
        }
    }

    /// Record a communicator definition (id and global-rank member list).
    /// Idempotent per id.
    pub fn register_comm(&self, id: u32, members: Vec<u32>) {
        let mut comms = self.comms.lock();
        if !comms.iter().any(|c| c.id == id) {
            comms.push(CommDef { id, members });
        }
    }

    /// Submit a finished local trace.
    pub fn submit(&self, local: LocalTrace) {
        let (location, events) = local.finish();
        self.done.lock().push(LocationTrace { location, events });
    }

    /// Number of streams submitted so far.
    pub fn submitted(&self) -> usize {
        self.done.lock().len()
    }

    /// Consume the collector, producing the merged trace.
    ///
    /// # Panics
    /// Panics if other handles still hold the sink (i.e. participants are
    /// still alive): collecting a trace mid-run is a harness bug.
    pub fn finish(self) -> Trace {
        let done = Arc::try_unwrap(self.done)
            .expect("TraceCollector::finish called while participants still hold handles")
            .into_inner();
        let comms = std::mem::take(&mut *self.comms.lock());
        Trace::with_comms(self.regions.snapshot(), comms, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LocationId;
    use ats_runtime::VTime;

    #[test]
    fn collects_from_multiple_threads() {
        let c = TraceCollector::new();
        let r = c.intern("work", RegionKind::Work);
        std::thread::scope(|s| {
            for rank in 0..4u32 {
                let c = c.clone();
                s.spawn(move || {
                    let mut lt = c.local(LocationId::rank(rank));
                    lt.enter(VTime(rank as u64), r);
                    lt.exit(VTime(rank as u64 + 10), r);
                    c.submit(lt);
                });
            }
        });
        let trace = c.finish();
        assert_eq!(trace.num_locations(), 4);
        assert_eq!(trace.num_events(), 8);
        // Sorted by rank regardless of submission order.
        for (i, l) in trace.locations.iter().enumerate() {
            assert_eq!(l.location.rank, i as u32);
        }
    }

    #[test]
    fn disabled_collector_yields_empty_streams() {
        let c = TraceCollector::disabled();
        let r = c.intern("work", RegionKind::Work);
        let mut lt = c.local(LocationId::rank(0));
        lt.enter(VTime(0), r);
        lt.exit(VTime(1), r);
        c.submit(lt);
        let trace = c.finish();
        assert_eq!(trace.num_events(), 0);
        assert_eq!(trace.num_locations(), 1);
    }

    #[test]
    #[should_panic(expected = "participants still hold handles")]
    fn finish_with_live_handles_panics() {
        let c = TraceCollector::new();
        let _other = c.clone();
        let _ = c.finish();
    }

    #[test]
    fn pooled_collector_reuses_buffers_without_changing_contents() {
        use crate::pool::TracePool;
        let pool = TracePool::new();
        let run = |pool: Option<TracePool>| {
            let c = match pool {
                Some(p) => TraceCollector::new().with_pool(p),
                None => TraceCollector::new(),
            };
            let r = c.intern("work", RegionKind::Work);
            for rank in 0..3u32 {
                let mut lt = c.local(LocationId::rank(rank));
                for i in 0..50u64 {
                    lt.enter(VTime(i * 2), r);
                    lt.exit(VTime(i * 2 + 1), r);
                }
                c.submit(lt);
            }
            c.finish()
        };
        let fresh = run(None);
        let first = run(Some(pool.clone()));
        assert_eq!(pool.recycle(first), 3);
        let second = run(Some(pool.clone()));
        // Second pooled run was served entirely from recycled capacity …
        assert_eq!(pool.stats().hits, 3);
        // … and recorded exactly the same trace as an unpooled collector.
        assert_eq!(second.locations, fresh.locations);
        assert_eq!(second.regions, fresh.regions);
    }

    #[test]
    fn submitted_counter() {
        let c = TraceCollector::new();
        assert_eq!(c.submitted(), 0);
        c.submit(c.local(LocationId::rank(0)));
        assert_eq!(c.submitted(), 1);
    }
}
