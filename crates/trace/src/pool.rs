//! Reusable event-buffer capacity across runs.
//!
//! Every sweep configuration spawns fresh simulated ranks, and every rank
//! grows a `Vec<Event>` from zero. Over a few hundred configurations that
//! is hundreds of thousands of incremental reallocations for buffers whose
//! final size barely changes between neighboring configs. A [`TracePool`]
//! keeps the grown allocations alive between runs: the harness recycles a
//! finished (analyzed) trace's event vectors back into the pool, and the
//! next configuration's [`crate::TraceCollector`] hands them out again.
//!
//! Pooling only ever affects *capacity*, never contents — a handed-out
//! buffer is always empty — so traces, analyzer reports and sweep rows are
//! byte-identical with or without a pool (asserted by the harness tests).
//! The pool is a plain LIFO under one mutex: it is touched twice per
//! rank-lifetime, far away from any hot path.

use crate::event::Event;
use crate::trace::Trace;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Retain at most this many buffers; beyond it, recycled vectors are
/// dropped so a one-off wide configuration cannot pin memory forever.
const MAX_POOLED_BUFFERS: usize = 1024;

#[derive(Debug, Default)]
struct PoolInner {
    buffers: Mutex<Vec<Vec<Event>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    recycled: AtomicUsize,
}

/// A shared pool of pre-grown event buffers. Cloning yields another handle
/// to the same pool; the default value is an empty pool.
#[derive(Debug, Clone, Default)]
pub struct TracePool {
    inner: Arc<PoolInner>,
}

/// Counters describing how much reuse a pool has seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct PoolStats {
    /// `take()` calls satisfied from the pool (allocation reused).
    pub hits: usize,
    /// `take()` calls that fell back to a fresh empty vector.
    pub misses: usize,
    /// Buffers returned through [`TracePool::recycle`] / [`TracePool::put`].
    pub recycled: usize,
    /// Buffers currently parked in the pool.
    pub available: usize,
}

impl TracePool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hand out a buffer: a recycled empty-but-grown vector if one is
    /// parked, a fresh `Vec::new()` otherwise.
    pub fn take(&self) -> Vec<Event> {
        match self.inner.buffers.lock().pop() {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = ats_obs::global_if_enabled() {
                    obs.trace.pool_hits.inc();
                }
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = ats_obs::global_if_enabled() {
                    obs.trace.pool_misses.inc();
                }
                Vec::new()
            }
        }
    }

    /// Return a buffer to the pool. Contents are cleared; zero-capacity
    /// vectors (disabled traces never grow one) are not worth parking.
    pub fn put(&self, mut buf: Vec<Event>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        self.inner.recycled.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = ats_obs::global_if_enabled() {
            obs.trace.pool_recycled.inc();
        }
        let mut buffers = self.inner.buffers.lock();
        if buffers.len() < MAX_POOLED_BUFFERS {
            buffers.push(buf);
        }
    }

    /// Strip a finished trace's per-location event vectors back into the
    /// pool, returning how many buffers were recycled. Call this once the
    /// trace has been analyzed and will not be read again.
    pub fn recycle(&self, trace: Trace) -> usize {
        let mut n = 0;
        for loc in trace.locations {
            if loc.events.capacity() > 0 {
                self.put(loc.events);
                n += 1;
            }
        }
        n
    }

    /// Number of buffers currently parked.
    pub fn available(&self) -> usize {
        self.inner.buffers.lock().len()
    }

    /// Snapshot the reuse counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            available: self.available(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, LocationId};
    use crate::region::RegionId;
    use crate::trace::{LocationTrace, Trace};
    use ats_runtime::VTime;

    fn grown_buffer(n: usize) -> Vec<Event> {
        (0..n as u64)
            .map(|i| {
                Event::new(
                    VTime(i),
                    EventKind::Enter {
                        region: RegionId(0),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn take_reuses_recycled_capacity() {
        let pool = TracePool::new();
        let first = pool.take();
        assert_eq!(first.capacity(), 0);
        pool.put(grown_buffer(100));
        let reused = pool.take();
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 100);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.recycled), (1, 1, 1));
    }

    #[test]
    fn zero_capacity_buffers_are_not_parked() {
        let pool = TracePool::new();
        pool.put(Vec::new());
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.stats().recycled, 0);
    }

    #[test]
    fn recycle_strips_a_whole_trace() {
        let pool = TracePool::new();
        let locations = (0..3u32)
            .map(|rank| LocationTrace {
                location: LocationId::rank(rank),
                events: grown_buffer(8),
            })
            .collect();
        let trace = Trace::with_comms(vec![], vec![], locations);
        // with_comms merges nothing here: three distinct locations.
        assert_eq!(pool.recycle(trace), 3);
        assert_eq!(pool.available(), 3);
    }

    #[test]
    fn shared_handles_see_one_pool() {
        let pool = TracePool::new();
        let other = pool.clone();
        other.put(grown_buffer(4));
        assert_eq!(pool.available(), 1);
        let _ = pool.take();
        assert_eq!(other.available(), 0);
    }

    #[test]
    fn concurrent_take_put_is_safe() {
        let pool = TracePool::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let mut buf = pool.take();
                        buf.extend_from_slice(&grown_buffer(4));
                        pool.put(buf);
                    }
                });
            }
        });
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert_eq!(s.recycled, 800);
    }
}
