//! Trace serialization.
//!
//! Traces are stored as a single JSON document (small experiments), as
//! JSON-lines (one header line with the region table, then one line per
//! location stream), or in the compact columnar binary form of
//! [`crate::binfmt`] (the default for artifacts). All formats round-trip
//! exactly; [`read_auto`] sniffs the leading bytes so consumers never need
//! to know which one they were handed. The JSONL reader tolerates trailing
//! blank lines so files can be concatenated by shell tooling, but rejects
//! CRLF-damaged and truncated streams with an error naming the line.

use crate::region::RegionMeta;
use crate::trace::{CommDef, LocationTrace, Trace};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors arising while reading or writing traces.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Structurally invalid file (e.g. missing header line).
    Format(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceIoError::Format(m) => write!(f, "trace format error: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// The on-disk trace encodings understood by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// Human-inspectable JSON-lines ([`write_jsonl`] / [`read_jsonl`]).
    Jsonl,
    /// Columnar binary ([`crate::binfmt`]); the artifact default.
    #[default]
    Binary,
}

impl TraceFormat {
    /// Conventional file extension for this format.
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "atsb",
        }
    }

    /// Write `trace` to `w` in this format.
    pub fn write<W: Write>(self, trace: &Trace, w: W) -> Result<(), TraceIoError> {
        match self {
            TraceFormat::Jsonl => write_jsonl(trace, w),
            TraceFormat::Binary => crate::binfmt::write_binary(trace, w),
        }
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "binary" | "bin" | "atsb" => Ok(TraceFormat::Binary),
            other => Err(format!(
                "unknown trace format {other:?} (expected \"jsonl\" or \"binary\")"
            )),
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "binary",
        })
    }
}

/// Serialize a whole trace as one pretty JSON document.
pub fn to_json(trace: &Trace) -> String {
    let out = serde_json::to_string_pretty(trace).expect("trace serialization cannot fail");
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.jsonl_bytes_encoded.add(out.len() as u64);
    }
    out
}

/// Parse a trace from a JSON document produced by [`to_json`].
pub fn from_json(s: &str) -> Result<Trace, TraceIoError> {
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.jsonl_bytes_decoded.add(s.len() as u64);
    }
    Ok(serde_json::from_str(s)?)
}

/// Write a trace in JSONL form: first header line = region table, second
/// header line = communicator definitions, then one line per location
/// stream. The writer is buffered internally, so passing a raw `File` is
/// fine; serialization goes through one flat buffer instead of a syscall
/// per fragment.
pub fn write_jsonl<W: Write>(trace: &Trace, w: W) -> Result<(), TraceIoError> {
    let mut w = CountWriter {
        inner: BufWriter::new(w),
        written: 0,
    };
    serde_json::to_writer(&mut w, &trace.regions)?;
    writeln!(w)?;
    serde_json::to_writer(&mut w, &trace.comms)?;
    writeln!(w)?;
    for loc in &trace.locations {
        serde_json::to_writer(&mut w, loc)?;
        writeln!(w)?;
    }
    w.flush()?;
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.jsonl_bytes_encoded.add(w.written);
    }
    Ok(())
}

/// Pass-through writer counting bytes for the observability layer.
struct CountWriter<W> {
    inner: W,
    written: u64,
}

impl<W: Write> Write for CountWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Line-by-line JSONL cursor: one reused `String` buffer (location streams
/// can run to megabytes, so a per-line allocation as `BufRead::lines` would
/// do dominates parse time) plus a physical line counter, so every parse
/// failure names the offending line.
struct JsonlLines<R> {
    r: R,
    buf: String,
    lineno: usize,
    bytes: u64,
}

impl<R: BufRead> JsonlLines<R> {
    /// Advance to the next non-blank line; false at end of input.
    /// Any carriage return is rejected outright: the writers emit bare LF,
    /// so a CR means the file went through CRLF translation and byte-exact
    /// round-tripping is already lost.
    fn advance(&mut self) -> Result<bool, TraceIoError> {
        loop {
            self.buf.clear();
            let n = self.r.read_line(&mut self.buf)?;
            if n == 0 {
                return Ok(false);
            }
            self.bytes += n as u64;
            self.lineno += 1;
            if self.buf.contains('\r') {
                return Err(TraceIoError::Format(format!(
                    "line {}: carriage return in JSONL trace (CRLF-damaged file; expected LF-only line endings)",
                    self.lineno
                )));
            }
            if !self.buf.trim().is_empty() {
                return Ok(true);
            }
        }
    }

    /// Parse the current line, labelling errors with the line number and
    /// flagging a missing final newline as likely truncation.
    fn parse<T: serde::de::DeserializeOwned>(&self, what: &str) -> Result<T, TraceIoError> {
        serde_json::from_str(&self.buf).map_err(|e| {
            let damage = if self.buf.ends_with('\n') {
                "malformed"
            } else {
                "truncated or malformed"
            };
            TraceIoError::Format(format!("line {}: {damage} {what}: {e}", self.lineno))
        })
    }
}

/// Streaming reader over a JSONL trace: parses the two header lines
/// eagerly, then yields one [`LocationTrace`] per [`next_location`]
/// (Self::next_location) call, so peak memory is one location's events
/// rather than the whole trace. [`read_jsonl`] is this plus collection.
pub struct JsonlStream<R> {
    lines: JsonlLines<R>,
    regions: Vec<RegionMeta>,
    comms: Vec<CommDef>,
}

impl<R: BufRead> JsonlStream<R> {
    /// Parse the region-table and communicator-table header lines;
    /// structural damage is a [`TraceIoError::Format`] naming the line.
    pub fn new(r: R) -> Result<Self, TraceIoError> {
        let mut lines = JsonlLines {
            r,
            buf: String::new(),
            lineno: 0,
            bytes: 0,
        };
        if !lines.advance()? {
            return Err(TraceIoError::Format(
                "truncated file: missing region-table header line".to_owned(),
            ));
        }
        let regions: Vec<RegionMeta> = lines.parse("region-table header")?;
        if !lines.advance()? {
            return Err(TraceIoError::Format(
                "truncated file: missing communicator-table header line".to_owned(),
            ));
        }
        let comms: Vec<CommDef> = lines.parse("communicator-table header")?;
        Ok(JsonlStream {
            lines,
            regions,
            comms,
        })
    }

    /// The decoded region table.
    pub fn regions(&self) -> &[RegionMeta] {
        &self.regions
    }

    /// The decoded communicator table.
    pub fn comms(&self) -> &[CommDef] {
        &self.comms
    }

    /// Move the tables out without cloning; subsequent accessor calls see
    /// empty tables.
    pub fn take_tables(&mut self) -> (Vec<RegionMeta>, Vec<CommDef>) {
        (
            std::mem::take(&mut self.regions),
            std::mem::take(&mut self.comms),
        )
    }

    /// Parse the next location stream line, or `None` at end of input.
    pub fn next_location(&mut self) -> Result<Option<LocationTrace>, TraceIoError> {
        if !self.lines.advance()? {
            return Ok(None);
        }
        Ok(Some(self.lines.parse("location stream")?))
    }

    /// Bytes consumed from the source so far.
    pub fn bytes_read(&self) -> u64 {
        self.lines.bytes
    }
}

/// Read a trace written by [`write_jsonl`]. Structural damage (missing
/// headers, CRLF translation, truncated or malformed lines) is reported as
/// [`TraceIoError::Format`] naming the physical line.
pub fn read_jsonl<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut stream = JsonlStream::new(r)?;
    let mut locations = Vec::new();
    while let Some(loc) = stream.next_location()? {
        locations.push(loc);
    }
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.jsonl_bytes_decoded.add(stream.bytes_read());
    }
    let (regions, comms) = stream.take_tables();
    Ok(Trace::with_comms(regions, comms, locations))
}

/// Read a trace in either on-disk format, sniffing the leading bytes: a
/// [`crate::binfmt::MAGIC`] prefix means binary, anything else is parsed as
/// JSONL.
pub fn read_auto<R: BufRead>(mut r: R) -> Result<Trace, TraceIoError> {
    let peek = r.fill_buf()?;
    let magic = &crate::binfmt::MAGIC;
    let is_binary = if peek.len() >= magic.len() {
        peek.starts_with(magic)
    } else {
        // A file shorter than the magic is invalid either way; an ATSB
        // prefix routes it to the binary reader's truncation error.
        !peek.is_empty() && magic.starts_with(peek)
    };
    if is_binary {
        crate::binfmt::read_binary(r)
    } else {
        read_jsonl(r)
    }
}

/// Open `path` and read it with [`read_auto`].
pub fn read_path(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    let file = std::fs::File::open(path)?;
    read_auto(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, LocationId};
    use crate::region::{RegionId, RegionKind};
    use ats_runtime::VTime;

    fn sample() -> Trace {
        let regions = vec![crate::region::RegionMeta {
            name: "work".into(),
            kind: RegionKind::Work,
        }];
        let events = vec![
            Event::new(
                VTime(1),
                EventKind::Enter {
                    region: RegionId(0),
                },
            ),
            Event::new(
                VTime(9),
                EventKind::Exit {
                    region: RegionId(0),
                },
            ),
        ];
        Trace::new(
            regions,
            vec![LocationTrace {
                location: LocationId::rank(0),
                events,
            }],
        )
    }

    #[test]
    fn json_roundtrip() {
        let tr = sample();
        let back = from_json(&to_json(&tr)).unwrap();
        assert_eq!(back.regions, tr.regions);
        assert_eq!(back.locations, tr.locations);
    }

    #[test]
    fn jsonl_roundtrip() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.regions, tr.regions);
        assert_eq!(back.locations, tr.locations);
    }

    /// A trace with several ranks and threads, a second region, and a
    /// communicator table — every JSONL line kind at once.
    fn multi_location_sample() -> Trace {
        let regions = vec![
            crate::region::RegionMeta {
                name: "work".into(),
                kind: RegionKind::Work,
            },
            crate::region::RegionMeta {
                name: "MPI_Send".into(),
                kind: RegionKind::MpiP2p,
            },
        ];
        let locations = (0..3u32)
            .flat_map(|rank| {
                (0..2u32).map(move |thread| LocationTrace {
                    location: LocationId { rank, thread },
                    events: (0..4u64)
                        .map(|i| {
                            let region = RegionId(((i / 2) % 2) as u32);
                            Event::new(
                                VTime(10 * (i + 1)),
                                if i % 2 == 0 {
                                    EventKind::Enter { region }
                                } else {
                                    EventKind::Exit { region }
                                },
                            )
                        })
                        .collect(),
                })
            })
            .collect();
        Trace::with_comms(
            regions,
            vec![
                crate::trace::CommDef {
                    id: 0,
                    members: vec![0, 1, 2],
                },
                crate::trace::CommDef {
                    id: 1,
                    members: vec![0, 2],
                },
            ],
            locations,
        )
    }

    #[test]
    fn jsonl_roundtrip_multi_location() {
        let tr = multi_location_sample();
        assert_eq!(tr.num_locations(), 6);
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.regions, tr.regions);
        assert_eq!(back.comms, tr.comms);
        assert_eq!(back.locations, tr.locations);
        // And through the single-document format too.
        let doc = from_json(&to_json(&tr)).unwrap();
        assert_eq!(doc.locations, tr.locations);
    }

    #[test]
    fn jsonl_tolerates_blank_lines() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        let back = read_jsonl(with_blanks.as_bytes()).unwrap();
        assert_eq!(back.locations, tr.locations);
    }

    #[test]
    fn empty_jsonl_is_an_error() {
        let err = read_jsonl(&b""[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn missing_comm_header_is_an_error() {
        let err = read_jsonl(
            &b"[]
"[..],
        )
        .unwrap_err();
        assert!(err.to_string().contains("communicator-table"));
    }

    #[test]
    fn comm_defs_roundtrip() {
        let tr = Trace::with_comms(
            vec![],
            vec![crate::trace::CommDef {
                id: 3,
                members: vec![4, 5, 6],
            }],
            vec![],
        );
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.comms, tr.comms);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            from_json("{not json").unwrap_err(),
            TraceIoError::Json(_)
        ));
    }

    #[test]
    fn crlf_stream_is_rejected_with_line_number() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let crlf = String::from_utf8(buf).unwrap().replace('\n', "\r\n");
        let err = read_jsonl(crlf.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("carriage return"), "{msg}");
    }

    #[test]
    fn truncated_stream_names_the_line() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        // Chop the single location line (line 3) in half, losing its
        // newline: a classic partial download / interrupted write.
        let cut = buf.len() - 12;
        let err = read_jsonl(&buf[..cut]).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("truncated"), "{msg}");
    }

    #[test]
    fn malformed_line_is_a_format_error_with_line_number() {
        let err = read_jsonl(&b"{oops\n"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
        assert!(msg.contains("region-table"), "{msg}");
    }

    #[test]
    fn read_auto_dispatches_on_leading_bytes() {
        let tr = multi_location_sample();
        let mut jsonl = Vec::new();
        write_jsonl(&tr, &mut jsonl).unwrap();
        let via_jsonl = read_auto(jsonl.as_slice()).unwrap();
        assert_eq!(via_jsonl.locations, tr.locations);
        let mut bin = Vec::new();
        crate::binfmt::write_binary(&tr, &mut bin).unwrap();
        let via_bin = read_auto(bin.as_slice()).unwrap();
        assert_eq!(via_bin.locations, tr.locations);
        assert_eq!(via_bin.comms, tr.comms);
    }

    #[test]
    fn read_auto_on_empty_input_is_a_jsonl_header_error() {
        let err = read_auto(&b""[..]).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn trace_format_parses_and_names_extensions() {
        use std::str::FromStr;
        assert_eq!(TraceFormat::from_str("jsonl").unwrap(), TraceFormat::Jsonl);
        assert_eq!(
            TraceFormat::from_str("binary").unwrap(),
            TraceFormat::Binary
        );
        assert_eq!(TraceFormat::from_str("atsb").unwrap(), TraceFormat::Binary);
        assert!(TraceFormat::from_str("xml").is_err());
        assert_eq!(TraceFormat::default(), TraceFormat::Binary);
        assert_eq!(TraceFormat::Binary.extension(), "atsb");
        assert_eq!(TraceFormat::Jsonl.extension(), "jsonl");
        assert_eq!(TraceFormat::Binary.to_string(), "binary");
    }

    #[test]
    fn trace_format_write_matches_direct_writers() {
        let tr = sample();
        let mut direct = Vec::new();
        write_jsonl(&tr, &mut direct).unwrap();
        let mut via_enum = Vec::new();
        TraceFormat::Jsonl.write(&tr, &mut via_enum).unwrap();
        assert_eq!(direct, via_enum);
        let mut bin = Vec::new();
        TraceFormat::Binary.write(&tr, &mut bin).unwrap();
        assert_eq!(read_auto(bin.as_slice()).unwrap().locations, tr.locations);
    }
}
