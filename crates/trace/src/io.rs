//! Trace serialization.
//!
//! Traces are stored as a single JSON document (small experiments) or as
//! JSON-lines (one header line with the region table, then one line per
//! location stream) for larger ones. Both formats round-trip exactly; the
//! JSONL reader tolerates trailing blank lines so files can be concatenated
//! by shell tooling.

use crate::region::RegionMeta;
use crate::trace::{CommDef, LocationTrace, Trace};
use std::io::{BufRead, BufWriter, Write};

/// Errors arising while reading or writing traces.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Structurally invalid file (e.g. missing header line).
    Format(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceIoError::Format(m) => write!(f, "trace format error: {m}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Serialize a whole trace as one pretty JSON document.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string_pretty(trace).expect("trace serialization cannot fail")
}

/// Parse a trace from a JSON document produced by [`to_json`].
pub fn from_json(s: &str) -> Result<Trace, TraceIoError> {
    Ok(serde_json::from_str(s)?)
}

/// Write a trace in JSONL form: first header line = region table, second
/// header line = communicator definitions, then one line per location
/// stream. The writer is buffered internally, so passing a raw `File` is
/// fine; serialization goes through one flat buffer instead of a syscall
/// per fragment.
pub fn write_jsonl<W: Write>(trace: &Trace, w: W) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(w);
    serde_json::to_writer(&mut w, &trace.regions)?;
    writeln!(w)?;
    serde_json::to_writer(&mut w, &trace.comms)?;
    writeln!(w)?;
    for loc in &trace.locations {
        serde_json::to_writer(&mut w, loc)?;
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a trace written by [`write_jsonl`]. One `String` line buffer is
/// reused across the whole file — location streams can run to megabytes,
/// and a per-line allocation (as `BufRead::lines` would do) dominates
/// parse time on large traces.
pub fn read_jsonl<R: BufRead>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut buf = String::new();
    // Fill `buf` with the next non-blank line; false at end of input.
    fn next_line<R: BufRead>(r: &mut R, buf: &mut String) -> Result<bool, TraceIoError> {
        loop {
            buf.clear();
            if r.read_line(buf)? == 0 {
                return Ok(false);
            }
            if !buf.trim().is_empty() {
                return Ok(true);
            }
        }
    }
    let header = |what: &str, buf: &mut String, r: &mut R| -> Result<(), TraceIoError> {
        if next_line(r, buf)? {
            Ok(())
        } else {
            Err(TraceIoError::Format(format!(
                "truncated file: missing {what} header line"
            )))
        }
    };
    header("region-table", &mut buf, &mut r)?;
    let regions: Vec<RegionMeta> = serde_json::from_str(&buf)?;
    header("communicator-table", &mut buf, &mut r)?;
    let comms: Vec<CommDef> = serde_json::from_str(&buf)?;
    let mut locations = Vec::new();
    while next_line(&mut r, &mut buf)? {
        let loc: LocationTrace = serde_json::from_str(&buf)?;
        locations.push(loc);
    }
    Ok(Trace::with_comms(regions, comms, locations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind, LocationId};
    use crate::region::{RegionId, RegionKind};
    use ats_runtime::VTime;

    fn sample() -> Trace {
        let regions = vec![crate::region::RegionMeta {
            name: "work".into(),
            kind: RegionKind::Work,
        }];
        let events = vec![
            Event::new(
                VTime(1),
                EventKind::Enter {
                    region: RegionId(0),
                },
            ),
            Event::new(
                VTime(9),
                EventKind::Exit {
                    region: RegionId(0),
                },
            ),
        ];
        Trace::new(
            regions,
            vec![LocationTrace {
                location: LocationId::rank(0),
                events,
            }],
        )
    }

    #[test]
    fn json_roundtrip() {
        let tr = sample();
        let back = from_json(&to_json(&tr)).unwrap();
        assert_eq!(back.regions, tr.regions);
        assert_eq!(back.locations, tr.locations);
    }

    #[test]
    fn jsonl_roundtrip() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.regions, tr.regions);
        assert_eq!(back.locations, tr.locations);
    }

    /// A trace with several ranks and threads, a second region, and a
    /// communicator table — every JSONL line kind at once.
    fn multi_location_sample() -> Trace {
        let regions = vec![
            crate::region::RegionMeta {
                name: "work".into(),
                kind: RegionKind::Work,
            },
            crate::region::RegionMeta {
                name: "MPI_Send".into(),
                kind: RegionKind::MpiP2p,
            },
        ];
        let locations = (0..3u32)
            .flat_map(|rank| {
                (0..2u32).map(move |thread| LocationTrace {
                    location: LocationId { rank, thread },
                    events: (0..4u64)
                        .map(|i| {
                            let region = RegionId(((i / 2) % 2) as u32);
                            Event::new(
                                VTime(10 * (i + 1)),
                                if i % 2 == 0 {
                                    EventKind::Enter { region }
                                } else {
                                    EventKind::Exit { region }
                                },
                            )
                        })
                        .collect(),
                })
            })
            .collect();
        Trace::with_comms(
            regions,
            vec![
                crate::trace::CommDef {
                    id: 0,
                    members: vec![0, 1, 2],
                },
                crate::trace::CommDef {
                    id: 1,
                    members: vec![0, 2],
                },
            ],
            locations,
        )
    }

    #[test]
    fn jsonl_roundtrip_multi_location() {
        let tr = multi_location_sample();
        assert_eq!(tr.num_locations(), 6);
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.regions, tr.regions);
        assert_eq!(back.comms, tr.comms);
        assert_eq!(back.locations, tr.locations);
        // And through the single-document format too.
        let doc = from_json(&to_json(&tr)).unwrap();
        assert_eq!(doc.locations, tr.locations);
    }

    #[test]
    fn jsonl_tolerates_blank_lines() {
        let tr = sample();
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        let back = read_jsonl(with_blanks.as_bytes()).unwrap();
        assert_eq!(back.locations, tr.locations);
    }

    #[test]
    fn empty_jsonl_is_an_error() {
        let err = read_jsonl(&b""[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn missing_comm_header_is_an_error() {
        let err = read_jsonl(
            &b"[]
"[..],
        )
        .unwrap_err();
        assert!(err.to_string().contains("communicator-table"));
    }

    #[test]
    fn comm_defs_roundtrip() {
        let tr = Trace::with_comms(
            vec![],
            vec![crate::trace::CommDef {
                id: 3,
                members: vec![4, 5, 6],
            }],
            vec![],
        );
        let mut buf = Vec::new();
        write_jsonl(&tr, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.comms, tr.comms);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            from_json("{not json").unwrap_err(),
            TraceIoError::Json(_)
        ));
    }
}
