//! Compact binary trace codec ("ATSB").
//!
//! JSONL traces are convenient to inspect but expensive at scale: a 16-rank
//! composite run serializes every event as a self-describing JSON object,
//! spending most of its bytes on key names and decimal digits and most of
//! its time inside serde. This module provides the columnar on-disk format
//! used for artifacts instead. Layout (all integers little-endian, `v` =
//! LEB128 varint, `z` = zigzag varint):
//!
//! ```text
//! magic "ATSB" | version u16 | flags u16
//! region table:  count v, then per region: name-len v, name bytes, kind u8
//! comm table:    count v, then per comm:   id v, member count v, members v*
//! locations:     count v, then per location block:
//!   rank v | thread v | event count n v
//!   tag column      n × u8            (0=Enter 1=Exit 2=Send 3=Recv 4=CollEnd)
//!   time column     n × z             (delta from previous event, wrapping)
//!   Enter/Exit      region v          (in event order)
//!   Send            to v*  comm v*  tag z*  bytes v*
//!   Recv            from v* comm v* tag z* bytes v* posted z* (delta from time)
//!   CollEnd         op u8* comm v* root v* (0=none, r+1) seq v* bytes v*
//!                   entered z* (delta from time)
//! ```
//!
//! Grouping same-typed fields into columns keeps each varint stream
//! homogeneous (timestamps are near-monotone, ranks are small), which is
//! where the size win over row-major encoding comes from. Timestamp and
//! `posted`/`entered` deltas use *wrapping* subtraction, so the codec is
//! lossless for arbitrary `u64` sequences — monotonicity is an invariant of
//! well-formed traces, not of the format.
//!
//! Versioning policy: `VERSION` is bumped on any layout change; readers
//! accept `1..=VERSION` and reject newer files with a clean
//! [`TraceIoError::Format`] (never a panic), so old binaries fail loudly on
//! future artifacts. The `flags` word is reserved (writers emit 0, readers
//! ignore it) to leave room for backwards-compatible extensions.
//!
//! Decoding is strict: every read is bounds-checked, counts are validated
//! against the remaining buffer before any allocation, unknown tags / kinds
//! / ops and trailing garbage are format errors.

use crate::event::{CollOp, Event, EventKind, LocationId};
use crate::io::TraceIoError;
use crate::region::{RegionId, RegionKind, RegionMeta};
use crate::trace::{CommDef, LocationTrace, Trace};
use ats_runtime::VTime;
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// File magic: the first four bytes of every binary trace.
pub const MAGIC: [u8; 4] = *b"ATSB";

/// Current (and newest understood) format version.
pub const VERSION: u16 = 1;

const TAG_ENTER: u8 = 0;
const TAG_EXIT: u8 = 1;
const TAG_SEND: u8 = 2;
const TAG_RECV: u8 = 3;
const TAG_COLL: u8 = 4;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint<B: BufMut>(buf: &mut B, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

fn tag_of(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Enter { .. } => TAG_ENTER,
        EventKind::Exit { .. } => TAG_EXIT,
        EventKind::Send { .. } => TAG_SEND,
        EventKind::Recv { .. } => TAG_RECV,
        EventKind::CollEnd { .. } => TAG_COLL,
    }
}

fn kind_code(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Work => 0,
        RegionKind::MpiP2p => 1,
        RegionKind::MpiCollective => 2,
        RegionKind::MpiSetup => 3,
        RegionKind::OmpParallel => 4,
        RegionKind::OmpSync => 5,
        RegionKind::OmpWorkshare => 6,
        RegionKind::Property => 7,
        RegionKind::User => 8,
    }
}

fn kind_from_code(code: u8) -> Option<RegionKind> {
    Some(match code {
        0 => RegionKind::Work,
        1 => RegionKind::MpiP2p,
        2 => RegionKind::MpiCollective,
        3 => RegionKind::MpiSetup,
        4 => RegionKind::OmpParallel,
        5 => RegionKind::OmpSync,
        6 => RegionKind::OmpWorkshare,
        7 => RegionKind::Property,
        8 => RegionKind::User,
        _ => return None,
    })
}

fn op_code(op: CollOp) -> u8 {
    match op {
        CollOp::Barrier => 0,
        CollOp::Bcast => 1,
        CollOp::Scatter => 2,
        CollOp::Scatterv => 3,
        CollOp::Gather => 4,
        CollOp::Gatherv => 5,
        CollOp::Reduce => 6,
        CollOp::Allreduce => 7,
        CollOp::Allgather => 8,
        CollOp::Alltoall => 9,
        CollOp::Alltoallv => 10,
        CollOp::Scan => 11,
        CollOp::OmpBarrier => 12,
        CollOp::OmpFork => 13,
        CollOp::OmpJoin => 14,
    }
}

fn op_from_code(code: u8) -> Option<CollOp> {
    Some(match code {
        0 => CollOp::Barrier,
        1 => CollOp::Bcast,
        2 => CollOp::Scatter,
        3 => CollOp::Scatterv,
        4 => CollOp::Gather,
        5 => CollOp::Gatherv,
        6 => CollOp::Reduce,
        7 => CollOp::Allreduce,
        8 => CollOp::Allgather,
        9 => CollOp::Alltoall,
        10 => CollOp::Alltoallv,
        11 => CollOp::Scan,
        12 => CollOp::OmpBarrier,
        13 => CollOp::OmpFork,
        14 => CollOp::OmpJoin,
        _ => return None,
    })
}

/// Encode a trace into an owned binary buffer.
pub fn encode(trace: &Trace) -> Bytes {
    // ~4 bytes/event after delta+varint compression; headroom avoids one
    // realloc on the common figure-sized traces.
    let mut buf = BytesMut::with_capacity(256 + trace.num_events() * 6);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    put_varint(&mut buf, trace.regions.len() as u64);
    for meta in &trace.regions {
        put_varint(&mut buf, meta.name.len() as u64);
        buf.put_slice(meta.name.as_bytes());
        buf.put_u8(kind_code(meta.kind));
    }
    put_varint(&mut buf, trace.comms.len() as u64);
    for comm in &trace.comms {
        put_varint(&mut buf, comm.id as u64);
        put_varint(&mut buf, comm.members.len() as u64);
        for &m in &comm.members {
            put_varint(&mut buf, m as u64);
        }
    }
    put_varint(&mut buf, trace.locations.len() as u64);
    for loc in &trace.locations {
        encode_location(&mut buf, loc);
    }
    let out = buf.freeze();
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.binary_bytes_encoded.add(out.len() as u64);
    }
    out
}

fn encode_location(buf: &mut BytesMut, loc: &LocationTrace) {
    put_varint(buf, loc.location.rank as u64);
    put_varint(buf, loc.location.thread as u64);
    put_varint(buf, loc.events.len() as u64);
    for e in &loc.events {
        buf.put_u8(tag_of(&e.kind));
    }
    let mut prev = 0u64;
    for e in &loc.events {
        put_varint(buf, zigzag(e.time.0.wrapping_sub(prev) as i64));
        prev = e.time.0;
    }
    for e in &loc.events {
        if let EventKind::Enter { region } | EventKind::Exit { region } = e.kind {
            put_varint(buf, region.0 as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Send { to, .. } = e.kind {
            put_varint(buf, to as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Send { comm, .. } = e.kind {
            put_varint(buf, comm as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Send { tag, .. } = e.kind {
            put_varint(buf, zigzag(tag as i64));
        }
    }
    for e in &loc.events {
        if let EventKind::Send { bytes, .. } = e.kind {
            put_varint(buf, bytes);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { from, .. } = e.kind {
            put_varint(buf, from as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { comm, .. } = e.kind {
            put_varint(buf, comm as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { tag, .. } = e.kind {
            put_varint(buf, zigzag(tag as i64));
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { bytes, .. } = e.kind {
            put_varint(buf, bytes);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { posted, .. } = e.kind {
            put_varint(buf, zigzag(posted.0.wrapping_sub(e.time.0) as i64));
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { op, .. } = e.kind {
            buf.put_u8(op_code(op));
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { comm, .. } = e.kind {
            put_varint(buf, comm as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { root, .. } = e.kind {
            put_varint(buf, root.map(|r| r as u64 + 1).unwrap_or(0));
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { seq, .. } = e.kind {
            put_varint(buf, seq);
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { bytes, .. } = e.kind {
            put_varint(buf, bytes);
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { entered, .. } = e.kind {
            put_varint(buf, zigzag(entered.0.wrapping_sub(e.time.0) as i64));
        }
    }
}

/// A bounds-checked cursor over the encoded buffer. Every primitive read
/// reports *where* and *what* failed, so corrupt-input errors are
/// actionable.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn fail(&self, what: &str) -> TraceIoError {
        TraceIoError::Format(format!(
            "binary trace: truncated or corrupt at byte {}: {what}",
            self.pos
        ))
    }

    fn u8(&mut self, what: &str) -> Result<u8, TraceIoError> {
        match self.data.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(self.fail(what)),
        }
    }

    fn slice(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceIoError> {
        if self.remaining() < n {
            return Err(self.fail(what));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, TraceIoError> {
        let s = self.slice(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn varint(&mut self, what: &str) -> Result<u64, TraceIoError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8(what)?;
            let low = (b & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(self.fail("varint overflows u64"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.fail("varint longer than 10 bytes"))
    }

    fn varint_u32(&mut self, what: &str) -> Result<u32, TraceIoError> {
        let v = self.varint(what)?;
        u32::try_from(v).map_err(|_| self.fail(what))
    }

    fn varint_i32(&mut self, what: &str) -> Result<i32, TraceIoError> {
        let v = unzigzag(self.varint(what)?);
        i32::try_from(v).map_err(|_| self.fail(what))
    }

    /// A varint element count, validated against the remaining buffer
    /// (every counted element occupies at least one byte), so a corrupted
    /// count cannot trigger a giant allocation.
    fn count(&mut self, what: &str) -> Result<usize, TraceIoError> {
        let v = self.varint(what)?;
        if v > self.remaining() as u64 {
            return Err(self.fail(what));
        }
        Ok(v as usize)
    }
}

/// Decode a binary trace from an in-memory buffer.
pub fn decode(data: &[u8]) -> Result<Trace, TraceIoError> {
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.binary_bytes_decoded.add(data.len() as u64);
    }
    let mut r = Reader::new(data);
    if r.slice(4, "magic")? != &MAGIC[..] {
        return Err(TraceIoError::Format(
            "binary trace: bad magic (not an ATSB file)".to_owned(),
        ));
    }
    let version = r.u16_le("version")?;
    if version == 0 || version > VERSION {
        return Err(TraceIoError::Format(format!(
            "binary trace: unsupported format version {version} (this reader understands 1..={VERSION})"
        )));
    }
    let _flags = r.u16_le("flags")?;

    let n_regions = r.count("region count")?;
    let mut regions = Vec::with_capacity(n_regions);
    for i in 0..n_regions {
        let len = r.count("region name length")?;
        let name = std::str::from_utf8(r.slice(len, "region name")?)
            .map_err(|_| {
                TraceIoError::Format(format!("binary trace: region {i} name is not UTF-8"))
            })?
            .to_owned();
        let code = r.u8("region kind")?;
        let kind = kind_from_code(code).ok_or_else(|| {
            TraceIoError::Format(format!("binary trace: unknown region kind code {code}"))
        })?;
        regions.push(RegionMeta { name, kind });
    }

    let n_comms = r.count("communicator count")?;
    let mut comms = Vec::with_capacity(n_comms);
    for _ in 0..n_comms {
        let id = r.varint_u32("communicator id")?;
        let n_members = r.count("communicator member count")?;
        let mut members = Vec::with_capacity(n_members);
        for _ in 0..n_members {
            members.push(r.varint_u32("communicator member")?);
        }
        comms.push(CommDef { id, members });
    }

    let n_locs = r.count("location count")?;
    let mut locations = Vec::with_capacity(n_locs);
    for _ in 0..n_locs {
        locations.push(decode_location(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(TraceIoError::Format(format!(
            "binary trace: {} trailing bytes after last location block",
            r.remaining()
        )));
    }
    Ok(Trace::with_comms(regions, comms, locations))
}

fn decode_location(r: &mut Reader<'_>) -> Result<LocationTrace, TraceIoError> {
    let rank = r.varint_u32("location rank")?;
    let thread = r.varint_u32("location thread")?;
    let n = r.count("event count")?;

    let tags = r.slice(n, "event tag column")?;
    let (mut n_region, mut n_send, mut n_recv, mut n_coll) = (0usize, 0usize, 0usize, 0usize);
    for &t in tags {
        match t {
            TAG_ENTER | TAG_EXIT => n_region += 1,
            TAG_SEND => n_send += 1,
            TAG_RECV => n_recv += 1,
            TAG_COLL => n_coll += 1,
            _ => {
                return Err(TraceIoError::Format(format!(
                    "binary trace: unknown event tag {t}"
                )))
            }
        }
    }

    let mut times = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        prev = prev.wrapping_add(unzigzag(r.varint("time column")?) as u64);
        times.push(prev);
    }

    fn column_u32(r: &mut Reader<'_>, n: usize, what: &str) -> Result<Vec<u32>, TraceIoError> {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(r.varint_u32(what)?);
        }
        Ok(col)
    }
    fn column_u64(r: &mut Reader<'_>, n: usize, what: &str) -> Result<Vec<u64>, TraceIoError> {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(r.varint(what)?);
        }
        Ok(col)
    }
    fn column_i32(r: &mut Reader<'_>, n: usize, what: &str) -> Result<Vec<i32>, TraceIoError> {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(r.varint_i32(what)?);
        }
        Ok(col)
    }
    fn column_delta(r: &mut Reader<'_>, n: usize, what: &str) -> Result<Vec<i64>, TraceIoError> {
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            col.push(unzigzag(r.varint(what)?));
        }
        Ok(col)
    }

    let regions = column_u32(r, n_region, "region column")?;
    let send_to = column_u32(r, n_send, "send-to column")?;
    let send_comm = column_u32(r, n_send, "send-comm column")?;
    let send_tag = column_i32(r, n_send, "send-tag column")?;
    let send_bytes = column_u64(r, n_send, "send-bytes column")?;
    let recv_from = column_u32(r, n_recv, "recv-from column")?;
    let recv_comm = column_u32(r, n_recv, "recv-comm column")?;
    let recv_tag = column_i32(r, n_recv, "recv-tag column")?;
    let recv_bytes = column_u64(r, n_recv, "recv-bytes column")?;
    let recv_posted = column_delta(r, n_recv, "recv-posted column")?;
    let mut coll_op = Vec::with_capacity(n_coll);
    for _ in 0..n_coll {
        let code = r.u8("coll-op column")?;
        coll_op.push(op_from_code(code).ok_or_else(|| {
            TraceIoError::Format(format!("binary trace: unknown collective op code {code}"))
        })?);
    }
    let coll_comm = column_u32(r, n_coll, "coll-comm column")?;
    let coll_root = column_u64(r, n_coll, "coll-root column")?;
    let coll_seq = column_u64(r, n_coll, "coll-seq column")?;
    let coll_bytes = column_u64(r, n_coll, "coll-bytes column")?;
    let coll_entered = column_delta(r, n_coll, "coll-entered column")?;

    let (mut ir, mut is, mut iv, mut ic) = (0usize, 0usize, 0usize, 0usize);
    let mut events = Vec::with_capacity(n);
    for (i, &t) in tags.iter().enumerate() {
        let time = VTime(times[i]);
        let kind = match t {
            TAG_ENTER | TAG_EXIT => {
                let region = RegionId(regions[ir]);
                ir += 1;
                if t == TAG_ENTER {
                    EventKind::Enter { region }
                } else {
                    EventKind::Exit { region }
                }
            }
            TAG_SEND => {
                let k = EventKind::Send {
                    to: send_to[is],
                    comm: send_comm[is],
                    tag: send_tag[is],
                    bytes: send_bytes[is],
                };
                is += 1;
                k
            }
            TAG_RECV => {
                let k = EventKind::Recv {
                    from: recv_from[iv],
                    comm: recv_comm[iv],
                    tag: recv_tag[iv],
                    bytes: recv_bytes[iv],
                    posted: VTime(time.0.wrapping_add(recv_posted[iv] as u64)),
                };
                iv += 1;
                k
            }
            _ => {
                let root = match coll_root[ic] {
                    0 => None,
                    v => Some(u32::try_from(v - 1).map_err(|_| {
                        TraceIoError::Format(format!(
                            "binary trace: collective root {} exceeds u32",
                            v - 1
                        ))
                    })?),
                };
                let k = EventKind::CollEnd {
                    op: coll_op[ic],
                    comm: coll_comm[ic],
                    root,
                    seq: coll_seq[ic],
                    bytes: coll_bytes[ic],
                    entered: VTime(time.0.wrapping_add(coll_entered[ic] as u64)),
                };
                ic += 1;
                k
            }
        };
        events.push(Event::new(time, kind));
    }
    Ok(LocationTrace {
        location: LocationId::new(rank, thread),
        events,
    })
}

/// Write a trace in binary form, mirroring [`crate::io::write_jsonl`].
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(&encode(trace))?;
    w.flush()?;
    Ok(())
}

/// Read a trace written by [`write_binary`], mirroring
/// [`crate::io::read_jsonl`].
pub fn read_binary<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_jsonl, write_jsonl};

    fn sample() -> Trace {
        let regions = vec![
            RegionMeta {
                name: "work".into(),
                kind: RegionKind::Work,
            },
            RegionMeta {
                name: "MPI_Send".into(),
                kind: RegionKind::MpiP2p,
            },
            RegionMeta {
                name: "MPI_Bcast".into(),
                kind: RegionKind::MpiCollective,
            },
        ];
        let comms = vec![
            CommDef {
                id: 0,
                members: vec![0, 1, 2, 3],
            },
            CommDef {
                id: 1,
                members: vec![0, 2],
            },
        ];
        let locations = (0..4u32)
            .map(|rank| {
                let mut events = vec![
                    Event::new(
                        VTime(5),
                        EventKind::Enter {
                            region: RegionId(0),
                        },
                    ),
                    Event::new(
                        VTime(1_000_000 + rank as u64),
                        EventKind::Send {
                            to: (rank + 1) % 4,
                            comm: 0,
                            tag: -7,
                            bytes: 1 << 20,
                        },
                    ),
                    Event::new(
                        VTime(2_000_000),
                        EventKind::Recv {
                            from: (rank + 3) % 4,
                            comm: 0,
                            tag: -7,
                            bytes: 1 << 20,
                            posted: VTime(900_000),
                        },
                    ),
                    Event::new(
                        VTime(3_000_000),
                        EventKind::CollEnd {
                            op: CollOp::Bcast,
                            comm: 1,
                            root: Some(2),
                            seq: 11,
                            bytes: 4096,
                            entered: VTime(2_500_000),
                        },
                    ),
                    Event::new(
                        VTime(3_000_001),
                        EventKind::CollEnd {
                            op: CollOp::Barrier,
                            comm: 0,
                            root: None,
                            seq: 12,
                            bytes: 0,
                            entered: VTime(3_000_000),
                        },
                    ),
                    Event::new(
                        VTime(4_000_000),
                        EventKind::Exit {
                            region: RegionId(0),
                        },
                    ),
                ];
                if rank == 0 {
                    events.insert(
                        1,
                        Event::new(
                            VTime(6),
                            EventKind::Enter {
                                region: RegionId(1),
                            },
                        ),
                    );
                    events.insert(
                        2,
                        Event::new(
                            VTime(7),
                            EventKind::Exit {
                                region: RegionId(1),
                            },
                        ),
                    );
                }
                LocationTrace {
                    location: LocationId::rank(rank),
                    events,
                }
            })
            .collect();
        Trace::with_comms(regions, comms, locations)
    }

    fn assert_traces_equal(a: &Trace, b: &Trace) {
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.comms, b.comms);
        assert_eq!(a.locations, b.locations);
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let tr = sample();
        let back = decode(&encode(&tr)).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn writer_reader_mirror_the_jsonl_api() {
        let tr = sample();
        let mut buf = Vec::new();
        write_binary(&tr, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let tr = Trace::with_comms(vec![], vec![], vec![]);
        let back = decode(&encode(&tr)).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn non_monotone_and_extreme_timestamps_roundtrip() {
        // The delta encoding must wrap losslessly even for hostile inputs.
        let events = vec![
            Event::new(
                VTime(u64::MAX),
                EventKind::Enter {
                    region: RegionId(0),
                },
            ),
            Event::new(
                VTime(0),
                EventKind::Exit {
                    region: RegionId(0),
                },
            ),
            Event::new(
                VTime(u64::MAX / 2),
                EventKind::Recv {
                    from: u32::MAX,
                    comm: u32::MAX,
                    tag: i32::MIN,
                    bytes: u64::MAX,
                    posted: VTime(u64::MAX),
                },
            ),
        ];
        let tr = Trace::with_comms(
            vec![RegionMeta {
                name: "x".into(),
                kind: RegionKind::User,
            }],
            vec![],
            vec![LocationTrace {
                location: LocationId::new(u32::MAX, u32::MAX),
                events,
            }],
        );
        let back = decode(&encode(&tr)).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let tr = sample();
        let bin = encode(&tr);
        let mut jsonl = Vec::new();
        write_jsonl(&tr, &mut jsonl).unwrap();
        assert!(
            bin.len() * 5 <= jsonl.len(),
            "binary {} bytes vs jsonl {} bytes",
            bin.len(),
            jsonl.len()
        );
        // And the JSONL path still reads its own output, proving the two
        // formats describe the same trace.
        let via_jsonl = read_jsonl(jsonl.as_slice()).unwrap();
        assert_traces_equal(&tr, &via_jsonl);
    }

    #[test]
    fn bad_magic_is_a_clean_error() {
        let err = decode(b"NOPE\x01\x00\x00\x00").unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION + 1);
        buf.put_u16_le(0);
        let err = decode(&buf).unwrap_err();
        assert!(err
            .to_string()
            .contains(&format!("unsupported format version {}", VERSION + 1)));
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let full = encode(&sample());
        for len in 0..full.len() {
            let err = decode(&full[..len]).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Format(_)),
                "prefix of {len} bytes must be a Format error"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut data = encode(&sample()).to_vec();
        data.push(0);
        let err = decode(&data).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn corrupt_interior_bytes_never_panic() {
        // Flip every byte to 0xff one at a time; decoding must either
        // succeed or fail cleanly, never panic or over-allocate.
        let full = encode(&sample()).to_vec();
        for i in 0..full.len() {
            let mut data = full.clone();
            data[i] = 0xff;
            let _ = decode(&data);
        }
    }

    #[test]
    fn unknown_event_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        put_varint(&mut buf, 0); // regions
        put_varint(&mut buf, 0); // comms
        put_varint(&mut buf, 1); // one location
        put_varint(&mut buf, 0); // rank
        put_varint(&mut buf, 0); // thread
        put_varint(&mut buf, 1); // one event
        buf.put_u8(9); // bogus tag
        buf.put_u8(0); // time delta
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("unknown event tag"));
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1234567, -7654321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
