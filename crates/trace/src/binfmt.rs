//! Compact binary trace codec ("ATSB").
//!
//! JSONL traces are convenient to inspect but expensive at scale: a 16-rank
//! composite run serializes every event as a self-describing JSON object,
//! spending most of its bytes on key names and decimal digits and most of
//! its time inside serde. This module provides the columnar on-disk format
//! used for artifacts instead. Layout (all integers little-endian, `v` =
//! LEB128 varint, `z` = zigzag varint):
//!
//! ```text
//! magic "ATSB" | version u16 | flags u16
//! region table:  count v, then per region: name-len v, name bytes, kind u8
//! comm table:    count v, then per comm:   id v, member count v, members v*
//! locations:     count v, then per location block:
//!   rank v | thread v | event count n v
//!   tag column      n × u8            (0=Enter 1=Exit 2=Send 3=Recv 4=CollEnd)
//!   time column     n × z             (delta from previous event, wrapping)
//!   Enter/Exit      region v          (in event order)
//!   Send            to v*  comm v*  tag z*  bytes v*
//!   Recv            from v* comm v* tag z* bytes v* posted z* (delta from time)
//!   CollEnd         op u8* comm v* root v* (0=none, r+1) seq v* bytes v*
//!                   entered z* (delta from time)
//! ```
//!
//! Grouping same-typed fields into columns keeps each varint stream
//! homogeneous (timestamps are near-monotone, ranks are small), which is
//! where the size win over row-major encoding comes from. Timestamp and
//! `posted`/`entered` deltas use *wrapping* subtraction, so the codec is
//! lossless for arbitrary `u64` sequences — monotonicity is an invariant of
//! well-formed traces, not of the format.
//!
//! Versioning policy: `VERSION` is bumped on any layout change; readers
//! accept `1..=VERSION` and reject newer files with a clean
//! [`TraceIoError::Format`] (never a panic), so old binaries fail loudly on
//! future artifacts. The `flags` word is reserved (writers emit 0, readers
//! ignore it) to leave room for backwards-compatible extensions.
//!
//! Decoding is strict: every read is bounds-checked, speculative
//! allocations driven by untrusted counts are clamped (a corrupt count can
//! only cost a bounded pre-allocation before the byte stream runs dry),
//! unknown tags / kinds / ops and trailing garbage are format errors.
//!
//! Two access paths share one decoding core:
//!
//! * [`decode`] / [`read_binary`] materialize a full [`Trace`] — the
//!   differential oracle and the default for small artifacts;
//! * [`BlockReader`] iterates per-location column blocks into one reused
//!   [`LocationBlock`] whose [`events`](LocationBlock::events) iterator
//!   assembles events on the fly, so a consumer that folds each block into
//!   partial state (the streaming analyzer) holds one location's columns
//!   in memory at a time, never the whole event vector. [`BlockWriter`]
//!   is the producing mirror: it emits a trace location-by-location and is
//!   byte-identical to [`encode`], which lets generators write traces far
//!   larger than memory.

use crate::event::{CollOp, Event, EventKind, LocationId};
use crate::io::TraceIoError;
use crate::region::{RegionId, RegionKind, RegionMeta};
use crate::trace::{CommDef, LocationTrace, Trace};
use ats_runtime::VTime;
use bytes::{BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// File magic: the first four bytes of every binary trace.
pub const MAGIC: [u8; 4] = *b"ATSB";

/// Current (and newest understood) format version.
pub const VERSION: u16 = 1;

const TAG_ENTER: u8 = 0;
const TAG_EXIT: u8 = 1;
const TAG_SEND: u8 = 2;
const TAG_RECV: u8 = 3;
const TAG_COLL: u8 = 4;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint<B: BufMut>(buf: &mut B, mut v: u64) {
    while v >= 0x80 {
        buf.put_u8((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.put_u8(v as u8);
}

fn tag_of(kind: &EventKind) -> u8 {
    match kind {
        EventKind::Enter { .. } => TAG_ENTER,
        EventKind::Exit { .. } => TAG_EXIT,
        EventKind::Send { .. } => TAG_SEND,
        EventKind::Recv { .. } => TAG_RECV,
        EventKind::CollEnd { .. } => TAG_COLL,
    }
}

fn kind_code(kind: RegionKind) -> u8 {
    match kind {
        RegionKind::Work => 0,
        RegionKind::MpiP2p => 1,
        RegionKind::MpiCollective => 2,
        RegionKind::MpiSetup => 3,
        RegionKind::OmpParallel => 4,
        RegionKind::OmpSync => 5,
        RegionKind::OmpWorkshare => 6,
        RegionKind::Property => 7,
        RegionKind::User => 8,
    }
}

fn kind_from_code(code: u8) -> Option<RegionKind> {
    Some(match code {
        0 => RegionKind::Work,
        1 => RegionKind::MpiP2p,
        2 => RegionKind::MpiCollective,
        3 => RegionKind::MpiSetup,
        4 => RegionKind::OmpParallel,
        5 => RegionKind::OmpSync,
        6 => RegionKind::OmpWorkshare,
        7 => RegionKind::Property,
        8 => RegionKind::User,
        _ => return None,
    })
}

fn op_code(op: CollOp) -> u8 {
    match op {
        CollOp::Barrier => 0,
        CollOp::Bcast => 1,
        CollOp::Scatter => 2,
        CollOp::Scatterv => 3,
        CollOp::Gather => 4,
        CollOp::Gatherv => 5,
        CollOp::Reduce => 6,
        CollOp::Allreduce => 7,
        CollOp::Allgather => 8,
        CollOp::Alltoall => 9,
        CollOp::Alltoallv => 10,
        CollOp::Scan => 11,
        CollOp::OmpBarrier => 12,
        CollOp::OmpFork => 13,
        CollOp::OmpJoin => 14,
    }
}

fn op_from_code(code: u8) -> Option<CollOp> {
    Some(match code {
        0 => CollOp::Barrier,
        1 => CollOp::Bcast,
        2 => CollOp::Scatter,
        3 => CollOp::Scatterv,
        4 => CollOp::Gather,
        5 => CollOp::Gatherv,
        6 => CollOp::Reduce,
        7 => CollOp::Allreduce,
        8 => CollOp::Allgather,
        9 => CollOp::Alltoall,
        10 => CollOp::Alltoallv,
        11 => CollOp::Scan,
        12 => CollOp::OmpBarrier,
        13 => CollOp::OmpFork,
        14 => CollOp::OmpJoin,
        _ => return None,
    })
}

/// Write the file header: magic, version, flags, region and comm tables.
fn encode_tables(buf: &mut BytesMut, regions: &[RegionMeta], comms: &[CommDef]) {
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // flags, reserved
    put_varint(buf, regions.len() as u64);
    for meta in regions {
        put_varint(buf, meta.name.len() as u64);
        buf.put_slice(meta.name.as_bytes());
        buf.put_u8(kind_code(meta.kind));
    }
    put_varint(buf, comms.len() as u64);
    for comm in comms {
        put_varint(buf, comm.id as u64);
        put_varint(buf, comm.members.len() as u64);
        for &m in &comm.members {
            put_varint(buf, m as u64);
        }
    }
}

/// Encode a trace into an owned binary buffer.
pub fn encode(trace: &Trace) -> Bytes {
    // ~4 bytes/event after delta+varint compression; headroom avoids one
    // realloc on the common figure-sized traces.
    let mut buf = BytesMut::with_capacity(256 + trace.num_events() * 6);
    encode_tables(&mut buf, &trace.regions, &trace.comms);
    put_varint(&mut buf, trace.locations.len() as u64);
    for loc in &trace.locations {
        encode_location(&mut buf, loc);
    }
    let out = buf.freeze();
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.binary_bytes_encoded.add(out.len() as u64);
    }
    out
}

fn encode_location(buf: &mut BytesMut, loc: &LocationTrace) {
    put_varint(buf, loc.location.rank as u64);
    put_varint(buf, loc.location.thread as u64);
    put_varint(buf, loc.events.len() as u64);
    for e in &loc.events {
        buf.put_u8(tag_of(&e.kind));
    }
    let mut prev = 0u64;
    for e in &loc.events {
        put_varint(buf, zigzag(e.time.0.wrapping_sub(prev) as i64));
        prev = e.time.0;
    }
    for e in &loc.events {
        if let EventKind::Enter { region } | EventKind::Exit { region } = e.kind {
            put_varint(buf, region.0 as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Send { to, .. } = e.kind {
            put_varint(buf, to as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Send { comm, .. } = e.kind {
            put_varint(buf, comm as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Send { tag, .. } = e.kind {
            put_varint(buf, zigzag(tag as i64));
        }
    }
    for e in &loc.events {
        if let EventKind::Send { bytes, .. } = e.kind {
            put_varint(buf, bytes);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { from, .. } = e.kind {
            put_varint(buf, from as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { comm, .. } = e.kind {
            put_varint(buf, comm as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { tag, .. } = e.kind {
            put_varint(buf, zigzag(tag as i64));
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { bytes, .. } = e.kind {
            put_varint(buf, bytes);
        }
    }
    for e in &loc.events {
        if let EventKind::Recv { posted, .. } = e.kind {
            put_varint(buf, zigzag(posted.0.wrapping_sub(e.time.0) as i64));
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { op, .. } = e.kind {
            buf.put_u8(op_code(op));
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { comm, .. } = e.kind {
            put_varint(buf, comm as u64);
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { root, .. } = e.kind {
            put_varint(buf, root.map(|r| r as u64 + 1).unwrap_or(0));
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { seq, .. } = e.kind {
            put_varint(buf, seq);
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { bytes, .. } = e.kind {
            put_varint(buf, bytes);
        }
    }
    for e in &loc.events {
        if let EventKind::CollEnd { entered, .. } = e.kind {
            put_varint(buf, zigzag(entered.0.wrapping_sub(e.time.0) as i64));
        }
    }
}

/// Upper bound on any single pre-allocation driven by an untrusted varint
/// count. Counts in a well-formed file are redundant with the byte stream
/// (every counted element occupies at least one encoded byte), but a
/// corrupt or adversarial header can claim arbitrarily many elements; the
/// reader therefore never reserves more than this many bytes up front and
/// lets the vectors grow organically — a bogus count then runs the stream
/// dry (a clean [`TraceIoError::Format`]) long before memory is at risk.
const MAX_PREALLOC_BYTES: usize = 1 << 20;

/// Capacity to pre-reserve for `n` untrusted elements of `elem` bytes.
fn clamped_cap(n: usize, elem: usize) -> usize {
    n.min(MAX_PREALLOC_BYTES / elem.max(1))
}

/// A bounds-checked buffered cursor over any byte source. Every primitive
/// read reports *where* and *what* failed, so corrupt-input errors are
/// actionable; running out of bytes is a format error (truncation), never
/// a panic.
struct StreamCursor<R> {
    inner: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Absolute offset of the next unconsumed byte.
    consumed: u64,
}

const CURSOR_BUF: usize = 64 * 1024;

impl<R: Read> StreamCursor<R> {
    fn new(inner: R) -> Self {
        StreamCursor {
            inner,
            buf: vec![0; CURSOR_BUF],
            start: 0,
            end: 0,
            consumed: 0,
        }
    }

    fn fail(&self, what: &str) -> TraceIoError {
        TraceIoError::Format(format!(
            "binary trace: truncated or corrupt at byte {}: {what}",
            self.consumed
        ))
    }

    /// Ensure at least one buffered byte; `Ok(false)` at end of input.
    fn refill(&mut self) -> Result<bool, TraceIoError> {
        if self.start < self.end {
            return Ok(true);
        }
        self.start = 0;
        self.end = 0;
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.end = n;
                    return Ok(true);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceIoError::Io(e)),
            }
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, TraceIoError> {
        if !self.refill()? {
            return Err(self.fail(what));
        }
        let b = self.buf[self.start];
        self.start += 1;
        self.consumed += 1;
        Ok(b)
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, TraceIoError> {
        let lo = self.u8(what)?;
        let hi = self.u8(what)?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    /// Append exactly `n` bytes to `out` (cleared first), clamping the
    /// speculative reservation.
    fn read_bytes_into(
        &mut self,
        out: &mut Vec<u8>,
        n: usize,
        what: &str,
    ) -> Result<(), TraceIoError> {
        out.clear();
        out.reserve(clamped_cap(n, 1));
        let mut left = n;
        while left > 0 {
            if !self.refill()? {
                return Err(self.fail(what));
            }
            let take = left.min(self.end - self.start);
            out.extend_from_slice(&self.buf[self.start..self.start + take]);
            self.start += take;
            self.consumed += take as u64;
            left -= take;
        }
        Ok(())
    }

    fn varint(&mut self, what: &str) -> Result<u64, TraceIoError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8(what)?;
            let low = (b & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(self.fail("varint overflows u64"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.fail("varint longer than 10 bytes"))
    }

    fn varint_u32(&mut self, what: &str) -> Result<u32, TraceIoError> {
        let v = self.varint(what)?;
        u32::try_from(v).map_err(|_| self.fail(what))
    }

    fn varint_i32(&mut self, what: &str) -> Result<i32, TraceIoError> {
        let v = unzigzag(self.varint(what)?);
        i32::try_from(v).map_err(|_| self.fail(what))
    }

    /// A varint element count. Unlike elements, counts cannot be validated
    /// against "bytes remaining" on a stream; allocation sites clamp with
    /// [`clamped_cap`] instead.
    fn count(&mut self, what: &str) -> Result<usize, TraceIoError> {
        let v = self.varint(what)?;
        usize::try_from(v).map_err(|_| self.fail(what))
    }

    /// Consume to end of input, returning how many bytes were left.
    fn count_trailing(&mut self) -> Result<u64, TraceIoError> {
        let mut n = (self.end - self.start) as u64;
        self.start = self.end;
        loop {
            match self.inner.read(&mut self.buf) {
                Ok(0) => return Ok(n),
                Ok(k) => n += k as u64,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceIoError::Io(e)),
            }
        }
    }
}

/// One decoded per-location column block. [`BlockReader`] reuses a single
/// instance across blocks, so the column vectors stop reallocating once
/// they reach the size of the largest block.
#[derive(Debug, Default)]
pub struct LocationBlock {
    location: Option<LocationId>,
    tags: Vec<u8>,
    times: Vec<u64>,
    regions: Vec<u32>,
    send_to: Vec<u32>,
    send_comm: Vec<u32>,
    send_tag: Vec<i32>,
    send_bytes: Vec<u64>,
    recv_from: Vec<u32>,
    recv_comm: Vec<u32>,
    recv_tag: Vec<i32>,
    recv_bytes: Vec<u64>,
    recv_posted: Vec<i64>,
    coll_op: Vec<CollOp>,
    coll_comm: Vec<u32>,
    coll_root: Vec<Option<u32>>,
    coll_seq: Vec<u64>,
    coll_bytes: Vec<u64>,
    coll_entered: Vec<i64>,
}

impl LocationBlock {
    /// The location this block belongs to.
    pub fn location(&self) -> LocationId {
        self.location.unwrap_or(LocationId { rank: 0, thread: 0 })
    }

    /// Number of events in the block.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True if the block holds no events.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Timestamp of the first event, if any.
    pub fn start_time(&self) -> Option<VTime> {
        self.times.first().map(|&t| VTime(t))
    }

    /// Timestamp of the last event, if any.
    pub fn end_time(&self) -> Option<VTime> {
        self.times.last().map(|&t| VTime(t))
    }

    /// Iterate the block's events in order, assembling each [`Event`] from
    /// the columns on the fly. Infallible: tags, ops and roots were
    /// validated during the block read.
    pub fn events(&self) -> BlockEvents<'_> {
        BlockEvents {
            b: self,
            i: 0,
            ir: 0,
            is: 0,
            iv: 0,
            ic: 0,
        }
    }

    /// Materialize the block as an owned [`LocationTrace`].
    pub fn to_location_trace(&self) -> LocationTrace {
        LocationTrace {
            location: self.location(),
            events: self.events().collect(),
        }
    }

    /// Decode the next block from `cur` into `self`, reusing buffers.
    fn read_from<R: Read>(&mut self, cur: &mut StreamCursor<R>) -> Result<(), TraceIoError> {
        let rank = cur.varint_u32("location rank")?;
        let thread = cur.varint_u32("location thread")?;
        self.location = Some(LocationId::new(rank, thread));
        let n = cur.count("event count")?;

        cur.read_bytes_into(&mut self.tags, n, "event tag column")?;
        let (mut n_region, mut n_send, mut n_recv, mut n_coll) = (0usize, 0usize, 0usize, 0usize);
        for &t in &self.tags {
            match t {
                TAG_ENTER | TAG_EXIT => n_region += 1,
                TAG_SEND => n_send += 1,
                TAG_RECV => n_recv += 1,
                TAG_COLL => n_coll += 1,
                _ => {
                    return Err(TraceIoError::Format(format!(
                        "binary trace: unknown event tag {t}"
                    )))
                }
            }
        }

        self.times.clear();
        self.times.reserve(clamped_cap(n, 8));
        let mut prev = 0u64;
        for _ in 0..n {
            prev = prev.wrapping_add(unzigzag(cur.varint("time column")?) as u64);
            self.times.push(prev);
        }

        fn col_u32<R: Read>(
            cur: &mut StreamCursor<R>,
            out: &mut Vec<u32>,
            n: usize,
            what: &str,
        ) -> Result<(), TraceIoError> {
            out.clear();
            out.reserve(clamped_cap(n, 4));
            for _ in 0..n {
                out.push(cur.varint_u32(what)?);
            }
            Ok(())
        }
        fn col_u64<R: Read>(
            cur: &mut StreamCursor<R>,
            out: &mut Vec<u64>,
            n: usize,
            what: &str,
        ) -> Result<(), TraceIoError> {
            out.clear();
            out.reserve(clamped_cap(n, 8));
            for _ in 0..n {
                out.push(cur.varint(what)?);
            }
            Ok(())
        }
        fn col_i32<R: Read>(
            cur: &mut StreamCursor<R>,
            out: &mut Vec<i32>,
            n: usize,
            what: &str,
        ) -> Result<(), TraceIoError> {
            out.clear();
            out.reserve(clamped_cap(n, 4));
            for _ in 0..n {
                out.push(cur.varint_i32(what)?);
            }
            Ok(())
        }
        fn col_delta<R: Read>(
            cur: &mut StreamCursor<R>,
            out: &mut Vec<i64>,
            n: usize,
            what: &str,
        ) -> Result<(), TraceIoError> {
            out.clear();
            out.reserve(clamped_cap(n, 8));
            for _ in 0..n {
                out.push(unzigzag(cur.varint(what)?));
            }
            Ok(())
        }

        col_u32(cur, &mut self.regions, n_region, "region column")?;
        col_u32(cur, &mut self.send_to, n_send, "send-to column")?;
        col_u32(cur, &mut self.send_comm, n_send, "send-comm column")?;
        col_i32(cur, &mut self.send_tag, n_send, "send-tag column")?;
        col_u64(cur, &mut self.send_bytes, n_send, "send-bytes column")?;
        col_u32(cur, &mut self.recv_from, n_recv, "recv-from column")?;
        col_u32(cur, &mut self.recv_comm, n_recv, "recv-comm column")?;
        col_i32(cur, &mut self.recv_tag, n_recv, "recv-tag column")?;
        col_u64(cur, &mut self.recv_bytes, n_recv, "recv-bytes column")?;
        col_delta(cur, &mut self.recv_posted, n_recv, "recv-posted column")?;
        self.coll_op.clear();
        self.coll_op.reserve(clamped_cap(n_coll, 1));
        for _ in 0..n_coll {
            let code = cur.u8("coll-op column")?;
            self.coll_op.push(op_from_code(code).ok_or_else(|| {
                TraceIoError::Format(format!("binary trace: unknown collective op code {code}"))
            })?);
        }
        col_u32(cur, &mut self.coll_comm, n_coll, "coll-comm column")?;
        self.coll_root.clear();
        self.coll_root.reserve(clamped_cap(n_coll, 8));
        for _ in 0..n_coll {
            self.coll_root.push(match cur.varint("coll-root column")? {
                0 => None,
                v => Some(u32::try_from(v - 1).map_err(|_| {
                    TraceIoError::Format(format!(
                        "binary trace: collective root {} exceeds u32",
                        v - 1
                    ))
                })?),
            });
        }
        col_u64(cur, &mut self.coll_seq, n_coll, "coll-seq column")?;
        col_u64(cur, &mut self.coll_bytes, n_coll, "coll-bytes column")?;
        col_delta(cur, &mut self.coll_entered, n_coll, "coll-entered column")?;
        Ok(())
    }
}

/// Iterator over a [`LocationBlock`]'s events. See
/// [`LocationBlock::events`].
pub struct BlockEvents<'a> {
    b: &'a LocationBlock,
    i: usize,
    ir: usize,
    is: usize,
    iv: usize,
    ic: usize,
}

impl Iterator for BlockEvents<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        let t = *self.b.tags.get(self.i)?;
        let time = VTime(self.b.times[self.i]);
        self.i += 1;
        let kind = match t {
            TAG_ENTER | TAG_EXIT => {
                let region = RegionId(self.b.regions[self.ir]);
                self.ir += 1;
                if t == TAG_ENTER {
                    EventKind::Enter { region }
                } else {
                    EventKind::Exit { region }
                }
            }
            TAG_SEND => {
                let k = EventKind::Send {
                    to: self.b.send_to[self.is],
                    comm: self.b.send_comm[self.is],
                    tag: self.b.send_tag[self.is],
                    bytes: self.b.send_bytes[self.is],
                };
                self.is += 1;
                k
            }
            TAG_RECV => {
                let k = EventKind::Recv {
                    from: self.b.recv_from[self.iv],
                    comm: self.b.recv_comm[self.iv],
                    tag: self.b.recv_tag[self.iv],
                    bytes: self.b.recv_bytes[self.iv],
                    posted: VTime(time.0.wrapping_add(self.b.recv_posted[self.iv] as u64)),
                };
                self.iv += 1;
                k
            }
            _ => {
                let k = EventKind::CollEnd {
                    op: self.b.coll_op[self.ic],
                    comm: self.b.coll_comm[self.ic],
                    root: self.b.coll_root[self.ic],
                    seq: self.b.coll_seq[self.ic],
                    bytes: self.b.coll_bytes[self.ic],
                    entered: VTime(time.0.wrapping_add(self.b.coll_entered[self.ic] as u64)),
                };
                self.ic += 1;
                k
            }
        };
        Some(Event::new(time, kind))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.b.tags.len() - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for BlockEvents<'_> {}

/// Streaming reader over an ATSB byte source: parses the header and the
/// region/communicator tables eagerly, then yields one [`LocationBlock`]
/// at a time from a reused buffer. Peak memory is one block's columns, not
/// the whole trace.
pub struct BlockReader<R: Read> {
    cur: StreamCursor<R>,
    regions: Vec<RegionMeta>,
    comms: Vec<CommDef>,
    n_locations: u64,
    read_locations: u64,
    trailing_checked: bool,
    block: LocationBlock,
}

impl<R: Read> BlockReader<R> {
    /// Parse the file header and tables; fails on bad magic, unsupported
    /// versions, or corrupt tables.
    pub fn new(r: R) -> Result<Self, TraceIoError> {
        let mut cur = StreamCursor::new(r);
        let magic = [
            cur.u8("magic")?,
            cur.u8("magic")?,
            cur.u8("magic")?,
            cur.u8("magic")?,
        ];
        if magic != MAGIC {
            return Err(TraceIoError::Format(
                "binary trace: bad magic (not an ATSB file)".to_owned(),
            ));
        }
        let version = cur.u16_le("version")?;
        if version == 0 || version > VERSION {
            return Err(TraceIoError::Format(format!(
                "binary trace: unsupported format version {version} (this reader understands 1..={VERSION})"
            )));
        }
        let _flags = cur.u16_le("flags")?;

        let n_regions = cur.count("region count")?;
        let mut regions = Vec::with_capacity(clamped_cap(
            n_regions,
            std::mem::size_of::<RegionMeta>(),
        ));
        let mut namebuf = Vec::new();
        for i in 0..n_regions {
            let len = cur.count("region name length")?;
            cur.read_bytes_into(&mut namebuf, len, "region name")?;
            let name = std::str::from_utf8(&namebuf)
                .map_err(|_| {
                    TraceIoError::Format(format!("binary trace: region {i} name is not UTF-8"))
                })?
                .to_owned();
            let code = cur.u8("region kind")?;
            let kind = kind_from_code(code).ok_or_else(|| {
                TraceIoError::Format(format!("binary trace: unknown region kind code {code}"))
            })?;
            regions.push(RegionMeta { name, kind });
        }

        let n_comms = cur.count("communicator count")?;
        let mut comms = Vec::with_capacity(clamped_cap(n_comms, std::mem::size_of::<CommDef>()));
        for _ in 0..n_comms {
            let id = cur.varint_u32("communicator id")?;
            let n_members = cur.count("communicator member count")?;
            let mut members = Vec::with_capacity(clamped_cap(n_members, 4));
            for _ in 0..n_members {
                members.push(cur.varint_u32("communicator member")?);
            }
            comms.push(CommDef { id, members });
        }

        let n_locations = cur.count("location count")? as u64;
        Ok(BlockReader {
            cur,
            regions,
            comms,
            n_locations,
            read_locations: 0,
            trailing_checked: false,
            block: LocationBlock::default(),
        })
    }

    /// The decoded region table.
    pub fn regions(&self) -> &[RegionMeta] {
        &self.regions
    }

    /// The decoded communicator table.
    pub fn comms(&self) -> &[CommDef] {
        &self.comms
    }

    /// Move the region and communicator tables out of the reader (e.g. to
    /// build a locationless shell [`Trace`] for name lookups) without
    /// cloning; subsequent [`regions`](Self::regions)/[`comms`](Self::comms)
    /// calls see empty tables.
    pub fn take_tables(&mut self) -> (Vec<RegionMeta>, Vec<CommDef>) {
        (
            std::mem::take(&mut self.regions),
            std::mem::take(&mut self.comms),
        )
    }

    /// Number of location blocks the header declares.
    pub fn n_locations(&self) -> u64 {
        self.n_locations
    }

    /// Bytes consumed from the source so far.
    pub fn bytes_read(&self) -> u64 {
        self.cur.consumed
    }

    /// Decode the next location block, or `None` after the last one. The
    /// final call verifies the stream is exhausted, so trailing garbage is
    /// an error exactly as in [`decode`].
    pub fn next_block(&mut self) -> Result<Option<&LocationBlock>, TraceIoError> {
        if self.read_locations == self.n_locations {
            if !self.trailing_checked {
                let extra = self.cur.count_trailing()?;
                self.trailing_checked = true;
                if extra > 0 {
                    return Err(TraceIoError::Format(format!(
                        "binary trace: {extra} trailing bytes after last location block"
                    )));
                }
            }
            return Ok(None);
        }
        self.block.read_from(&mut self.cur)?;
        self.read_locations += 1;
        Ok(Some(&self.block))
    }

    /// Drain any remaining blocks (performing the trailing-garbage check)
    /// and return the total bytes consumed.
    pub fn finish(mut self) -> Result<u64, TraceIoError> {
        while self.next_block()?.is_some() {}
        Ok(self.cur.consumed)
    }
}

/// Decode a binary trace from an in-memory buffer.
pub fn decode(data: &[u8]) -> Result<Trace, TraceIoError> {
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.binary_bytes_decoded.add(data.len() as u64);
    }
    let mut br = BlockReader::new(data)?;
    let mut locations = Vec::with_capacity(clamped_cap(
        br.n_locations() as usize,
        std::mem::size_of::<LocationTrace>(),
    ));
    while let Some(block) = br.next_block()? {
        locations.push(block.to_location_trace());
    }
    let (regions, comms) = br.take_tables();
    Ok(Trace::with_comms(regions, comms, locations))
}

/// Write a trace in binary form, mirroring [`crate::io::write_jsonl`].
pub fn write_binary<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(&encode(trace))?;
    w.flush()?;
    Ok(())
}

/// Read a trace written by [`write_binary`], mirroring
/// [`crate::io::read_jsonl`]. Unlike [`decode`], this never buffers the
/// whole file: blocks stream through one reused [`LocationBlock`].
pub fn read_binary<R: Read>(r: R) -> Result<Trace, TraceIoError> {
    let mut br = BlockReader::new(r)?;
    let mut locations = Vec::with_capacity(clamped_cap(
        br.n_locations() as usize,
        std::mem::size_of::<LocationTrace>(),
    ));
    while let Some(block) = br.next_block()? {
        locations.push(block.to_location_trace());
    }
    let (regions, comms) = br.take_tables();
    let bytes = br.finish()?;
    if let Some(obs) = ats_obs::global_if_enabled() {
        obs.trace.binary_bytes_decoded.add(bytes);
    }
    Ok(Trace::with_comms(regions, comms, locations))
}

/// Streaming writer mirroring [`BlockReader`]: emits the header and tables
/// up front, then one location block per [`write_location`]
/// (Self::write_location) call. The byte stream is identical to
/// [`encode`] over the same trace, so readers cannot tell the two writers
/// apart — which is what lets a generator produce traces far larger than
/// memory.
pub struct BlockWriter<W: Write> {
    w: W,
    /// Capacity hint for the next block buffer, tracking the largest block
    /// seen so far.
    cap: usize,
    declared: u64,
    written: u64,
    bytes: u64,
}

impl<W: Write> BlockWriter<W> {
    /// Write the header, tables and the declared location count.
    pub fn new(
        mut w: W,
        regions: &[RegionMeta],
        comms: &[CommDef],
        n_locations: u64,
    ) -> Result<Self, TraceIoError> {
        let mut buf = BytesMut::with_capacity(4096);
        encode_tables(&mut buf, regions, comms);
        put_varint(&mut buf, n_locations);
        w.write_all(&buf)?;
        Ok(BlockWriter {
            w,
            cap: 4096,
            declared: n_locations,
            written: 0,
            bytes: buf.len() as u64,
        })
    }

    /// Append one location block. Locations must arrive sorted by
    /// `LocationId` with no duplicates for the result to satisfy the
    /// [`Trace`] invariants readers rely on; the writer itself only
    /// enforces the declared count.
    pub fn write_location(&mut self, loc: &LocationTrace) -> Result<(), TraceIoError> {
        if self.written == self.declared {
            return Err(TraceIoError::Format(format!(
                "binary trace: more location blocks written than the {} declared",
                self.declared
            )));
        }
        let mut buf = BytesMut::with_capacity(self.cap);
        encode_location(&mut buf, loc);
        self.w.write_all(&buf)?;
        self.cap = self.cap.max(buf.len());
        self.bytes += buf.len() as u64;
        self.written += 1;
        Ok(())
    }

    /// Flush and return the total bytes written. Fails if fewer blocks
    /// were written than declared (the file would be unreadable).
    pub fn finish(mut self) -> Result<u64, TraceIoError> {
        if self.written != self.declared {
            return Err(TraceIoError::Format(format!(
                "binary trace: {} location blocks written but {} declared",
                self.written, self.declared
            )));
        }
        self.w.flush()?;
        if let Some(obs) = ats_obs::global_if_enabled() {
            obs.trace.binary_bytes_encoded.add(self.bytes);
        }
        Ok(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_jsonl, write_jsonl};

    fn sample() -> Trace {
        let regions = vec![
            RegionMeta {
                name: "work".into(),
                kind: RegionKind::Work,
            },
            RegionMeta {
                name: "MPI_Send".into(),
                kind: RegionKind::MpiP2p,
            },
            RegionMeta {
                name: "MPI_Bcast".into(),
                kind: RegionKind::MpiCollective,
            },
        ];
        let comms = vec![
            CommDef {
                id: 0,
                members: vec![0, 1, 2, 3],
            },
            CommDef {
                id: 1,
                members: vec![0, 2],
            },
        ];
        let locations = (0..4u32)
            .map(|rank| {
                let mut events = vec![
                    Event::new(
                        VTime(5),
                        EventKind::Enter {
                            region: RegionId(0),
                        },
                    ),
                    Event::new(
                        VTime(1_000_000 + rank as u64),
                        EventKind::Send {
                            to: (rank + 1) % 4,
                            comm: 0,
                            tag: -7,
                            bytes: 1 << 20,
                        },
                    ),
                    Event::new(
                        VTime(2_000_000),
                        EventKind::Recv {
                            from: (rank + 3) % 4,
                            comm: 0,
                            tag: -7,
                            bytes: 1 << 20,
                            posted: VTime(900_000),
                        },
                    ),
                    Event::new(
                        VTime(3_000_000),
                        EventKind::CollEnd {
                            op: CollOp::Bcast,
                            comm: 1,
                            root: Some(2),
                            seq: 11,
                            bytes: 4096,
                            entered: VTime(2_500_000),
                        },
                    ),
                    Event::new(
                        VTime(3_000_001),
                        EventKind::CollEnd {
                            op: CollOp::Barrier,
                            comm: 0,
                            root: None,
                            seq: 12,
                            bytes: 0,
                            entered: VTime(3_000_000),
                        },
                    ),
                    Event::new(
                        VTime(4_000_000),
                        EventKind::Exit {
                            region: RegionId(0),
                        },
                    ),
                ];
                if rank == 0 {
                    events.insert(
                        1,
                        Event::new(
                            VTime(6),
                            EventKind::Enter {
                                region: RegionId(1),
                            },
                        ),
                    );
                    events.insert(
                        2,
                        Event::new(
                            VTime(7),
                            EventKind::Exit {
                                region: RegionId(1),
                            },
                        ),
                    );
                }
                LocationTrace {
                    location: LocationId::rank(rank),
                    events,
                }
            })
            .collect();
        Trace::with_comms(regions, comms, locations)
    }

    fn assert_traces_equal(a: &Trace, b: &Trace) {
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.comms, b.comms);
        assert_eq!(a.locations, b.locations);
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let tr = sample();
        let back = decode(&encode(&tr)).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn writer_reader_mirror_the_jsonl_api() {
        let tr = sample();
        let mut buf = Vec::new();
        write_binary(&tr, &mut buf).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let tr = Trace::with_comms(vec![], vec![], vec![]);
        let back = decode(&encode(&tr)).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn non_monotone_and_extreme_timestamps_roundtrip() {
        // The delta encoding must wrap losslessly even for hostile inputs.
        let events = vec![
            Event::new(
                VTime(u64::MAX),
                EventKind::Enter {
                    region: RegionId(0),
                },
            ),
            Event::new(
                VTime(0),
                EventKind::Exit {
                    region: RegionId(0),
                },
            ),
            Event::new(
                VTime(u64::MAX / 2),
                EventKind::Recv {
                    from: u32::MAX,
                    comm: u32::MAX,
                    tag: i32::MIN,
                    bytes: u64::MAX,
                    posted: VTime(u64::MAX),
                },
            ),
        ];
        let tr = Trace::with_comms(
            vec![RegionMeta {
                name: "x".into(),
                kind: RegionKind::User,
            }],
            vec![],
            vec![LocationTrace {
                location: LocationId::new(u32::MAX, u32::MAX),
                events,
            }],
        );
        let back = decode(&encode(&tr)).unwrap();
        assert_traces_equal(&tr, &back);
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let tr = sample();
        let bin = encode(&tr);
        let mut jsonl = Vec::new();
        write_jsonl(&tr, &mut jsonl).unwrap();
        assert!(
            bin.len() * 5 <= jsonl.len(),
            "binary {} bytes vs jsonl {} bytes",
            bin.len(),
            jsonl.len()
        );
        // And the JSONL path still reads its own output, proving the two
        // formats describe the same trace.
        let via_jsonl = read_jsonl(jsonl.as_slice()).unwrap();
        assert_traces_equal(&tr, &via_jsonl);
    }

    #[test]
    fn bad_magic_is_a_clean_error() {
        let err = decode(b"NOPE\x01\x00\x00\x00").unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION + 1);
        buf.put_u16_le(0);
        let err = decode(&buf).unwrap_err();
        assert!(err
            .to_string()
            .contains(&format!("unsupported format version {}", VERSION + 1)));
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let full = encode(&sample());
        for len in 0..full.len() {
            let err = decode(&full[..len]).unwrap_err();
            assert!(
                matches!(err, TraceIoError::Format(_)),
                "prefix of {len} bytes must be a Format error"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut data = encode(&sample()).to_vec();
        data.push(0);
        let err = decode(&data).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn corrupt_interior_bytes_never_panic() {
        // Flip every byte to 0xff one at a time; decoding must either
        // succeed or fail cleanly, never panic or over-allocate.
        let full = encode(&sample()).to_vec();
        for i in 0..full.len() {
            let mut data = full.clone();
            data[i] = 0xff;
            let _ = decode(&data);
        }
    }

    #[test]
    fn unknown_event_tag_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        put_varint(&mut buf, 0); // regions
        put_varint(&mut buf, 0); // comms
        put_varint(&mut buf, 1); // one location
        put_varint(&mut buf, 0); // rank
        put_varint(&mut buf, 0); // thread
        put_varint(&mut buf, 1); // one event
        buf.put_u8(9); // bogus tag
        buf.put_u8(0); // time delta
        let err = decode(&buf).unwrap_err();
        assert!(err.to_string().contains("unknown event tag"));
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1234567, -7654321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    /// Header-only buffer: magic, version, flags.
    fn header() -> BytesMut {
        let mut buf = BytesMut::new();
        buf.put_slice(&MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf
    }

    #[test]
    fn absurd_region_count_is_a_clean_error() {
        // A corrupt header claiming ~u64::MAX regions must fail with a
        // format error when the stream runs dry, not attempt a giant
        // allocation first.
        let mut buf = header();
        put_varint(&mut buf, u64::MAX / 2);
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "got {err}");
    }

    #[test]
    fn absurd_comm_member_count_is_a_clean_error() {
        let mut buf = header();
        put_varint(&mut buf, 0); // regions
        put_varint(&mut buf, 1); // one comm
        put_varint(&mut buf, 0); // id
        put_varint(&mut buf, u64::MAX / 2); // absurd member count
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "got {err}");
    }

    #[test]
    fn absurd_event_count_is_a_clean_error() {
        let mut buf = header();
        put_varint(&mut buf, 0); // regions
        put_varint(&mut buf, 0); // comms
        put_varint(&mut buf, 1); // one location
        put_varint(&mut buf, 0); // rank
        put_varint(&mut buf, 0); // thread
        put_varint(&mut buf, u64::MAX / 2); // absurd event count
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "got {err}");
    }

    #[test]
    fn absurd_location_count_is_a_clean_error() {
        let mut buf = header();
        put_varint(&mut buf, 0); // regions
        put_varint(&mut buf, 0); // comms
        put_varint(&mut buf, u64::MAX / 2); // absurd location count
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "got {err}");
    }

    #[test]
    fn absurd_region_name_length_is_a_clean_error() {
        let mut buf = header();
        put_varint(&mut buf, 1); // one region
        put_varint(&mut buf, u64::MAX / 2); // absurd name length
        let err = decode(&buf).unwrap_err();
        assert!(matches!(err, TraceIoError::Format(_)), "got {err}");
    }

    #[test]
    fn block_reader_yields_the_sample_locations_in_order() {
        let tr = sample();
        let data = encode(&tr);
        let mut br = BlockReader::new(&data[..]).unwrap();
        assert_eq!(br.regions(), &tr.regions[..]);
        assert_eq!(br.comms(), &tr.comms[..]);
        assert_eq!(br.n_locations(), tr.locations.len() as u64);
        let mut got = Vec::new();
        while let Some(block) = br.next_block().unwrap() {
            assert_eq!(block.len(), block.events().len());
            assert_eq!(block.start_time(), Some(block.to_location_trace().events[0].time));
            got.push(block.to_location_trace());
        }
        assert_eq!(got, tr.locations);
        assert_eq!(br.finish().unwrap(), data.len() as u64);
    }

    #[test]
    fn block_reader_detects_trailing_garbage() {
        let mut data = encode(&sample()).to_vec();
        data.extend_from_slice(&[0, 0, 0]);
        let mut br = BlockReader::new(&data[..]).unwrap();
        let err = loop {
            match br.next_block() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("trailing garbage must be rejected"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("3 trailing bytes"), "got {err}");
    }

    #[test]
    fn block_writer_is_byte_identical_to_encode() {
        let tr = sample();
        let mut out = Vec::new();
        let mut bw =
            BlockWriter::new(&mut out, &tr.regions, &tr.comms, tr.locations.len() as u64).unwrap();
        for loc in &tr.locations {
            bw.write_location(loc).unwrap();
        }
        let bytes = bw.finish().unwrap();
        let whole = encode(&tr);
        assert_eq!(out, whole.to_vec());
        assert_eq!(bytes, whole.len() as u64);
    }

    #[test]
    fn block_writer_enforces_the_declared_count() {
        let tr = sample();
        // Too few blocks: finish() refuses.
        let mut out = Vec::new();
        let bw = BlockWriter::new(&mut out, &tr.regions, &tr.comms, 2).unwrap();
        assert!(bw.finish().unwrap_err().to_string().contains("declared"));
        // Too many blocks: write_location refuses.
        let mut out = Vec::new();
        let mut bw = BlockWriter::new(&mut out, &tr.regions, &tr.comms, 0).unwrap();
        let err = bw.write_location(&tr.locations[0]).unwrap_err();
        assert!(err.to_string().contains("declared"), "got {err}");
    }

    /// A reader that hands out one byte per call, to hammer the cursor's
    /// refill boundaries.
    struct OneByte<R>(R);

    impl<R: Read> Read for OneByte<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.read(&mut buf[..1])
        }
    }

    #[test]
    fn one_byte_at_a_time_stream_roundtrips() {
        let tr = sample();
        let data = encode(&tr);
        let back = read_binary(OneByte(&data[..])).unwrap();
        assert_traces_equal(&tr, &back);
    }
}
