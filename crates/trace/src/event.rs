//! Trace events and locations.

use crate::region::RegionId;
use ats_runtime::VTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A measurement location: one MPI rank × one thread within that rank.
///
/// A pure-MPI participant is `(rank, 0)`; OpenMP threads of a hybrid rank
/// are `(rank, 0..T)`; a standalone OpenMP program uses rank 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LocationId {
    /// Global MPI rank (0 for pure shared-memory runs).
    pub rank: u32,
    /// Thread index within the rank (0 = the rank's master thread).
    pub thread: u32,
}

impl LocationId {
    /// The master thread of `rank`.
    pub fn rank(rank: u32) -> Self {
        LocationId { rank, thread: 0 }
    }

    /// Thread `thread` of `rank`.
    pub fn new(rank: u32, thread: u32) -> Self {
        LocationId { rank, thread }
    }
}

impl fmt::Display for LocationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.thread == 0 {
            write!(f, "{}", self.rank)
        } else {
            write!(f, "{}.{}", self.rank, self.thread)
        }
    }
}

/// Collective-operation identifiers, matching the MPI operations the paper's
/// property functions exercise (plus the allreduce/allgather/scan extensions
/// listed in its future-work catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollOp {
    Barrier,
    Bcast,
    Scatter,
    Scatterv,
    Gather,
    Gatherv,
    Reduce,
    Allreduce,
    Allgather,
    Alltoall,
    Alltoallv,
    Scan,
    /// OpenMP-style team barrier (explicit or implicit).
    OmpBarrier,
    /// OpenMP parallel-region fork/join pseudo-collective.
    OmpFork,
    OmpJoin,
}

impl CollOp {
    /// The canonical region name recorded around this operation.
    pub fn region_name(self) -> &'static str {
        match self {
            CollOp::Barrier => "MPI_Barrier",
            CollOp::Bcast => "MPI_Bcast",
            CollOp::Scatter => "MPI_Scatter",
            CollOp::Scatterv => "MPI_Scatterv",
            CollOp::Gather => "MPI_Gather",
            CollOp::Gatherv => "MPI_Gatherv",
            CollOp::Reduce => "MPI_Reduce",
            CollOp::Allreduce => "MPI_Allreduce",
            CollOp::Allgather => "MPI_Allgather",
            CollOp::Alltoall => "MPI_Alltoall",
            CollOp::Alltoallv => "MPI_Alltoallv",
            CollOp::Scan => "MPI_Scan",
            CollOp::OmpBarrier => "omp_barrier",
            CollOp::OmpFork => "omp_fork",
            CollOp::OmpJoin => "omp_join",
        }
    }

    /// True for operations with a distinguished root rank.
    pub fn is_rooted(self) -> bool {
        matches!(
            self,
            CollOp::Bcast
                | CollOp::Scatter
                | CollOp::Scatterv
                | CollOp::Gather
                | CollOp::Gatherv
                | CollOp::Reduce
        )
    }
}

impl fmt::Display for CollOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.region_name())
    }
}

/// What happened at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Control flow entered a region.
    Enter { region: RegionId },
    /// Control flow left a region.
    Exit { region: RegionId },
    /// A message was posted for transmission (recorded at the send call's
    /// post time, with the *communicator-local* destination rank).
    Send {
        to: u32,
        comm: u32,
        tag: i32,
        bytes: u64,
    },
    /// A message was delivered (recorded at receive completion). `posted`
    /// is when the receive was posted — the interval `[posted, time]` is
    /// the receiver-side occupancy of the receive call.
    Recv {
        from: u32,
        comm: u32,
        tag: i32,
        bytes: u64,
        posted: VTime,
    },
    /// A collective completed at this location. `seq` numbers collectives
    /// per communicator so analyzers can group the per-member records of
    /// one logical operation; `entered` is this member's entry time.
    CollEnd {
        op: CollOp,
        comm: u32,
        /// Root as a communicator-local rank, for rooted operations.
        root: Option<u32>,
        seq: u64,
        bytes: u64,
        entered: VTime,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time at which the event occurred.
    pub time: VTime,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// Shorthand constructor.
    pub fn new(time: VTime, kind: EventKind) -> Self {
        Event { time, kind }
    }

    /// The region this event enters, if it is an `Enter`.
    pub fn enter_region(&self) -> Option<RegionId> {
        match self.kind {
            EventKind::Enter { region } => Some(region),
            _ => None,
        }
    }

    /// The region this event exits, if it is an `Exit`.
    pub fn exit_region(&self) -> Option<RegionId> {
        match self.kind {
            EventKind::Exit { region } => Some(region),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_display() {
        assert_eq!(LocationId::rank(3).to_string(), "3");
        assert_eq!(LocationId::new(2, 5).to_string(), "2.5");
    }

    #[test]
    fn location_ordering_rank_major() {
        let a = LocationId::new(1, 9);
        let b = LocationId::new(2, 0);
        assert!(a < b);
        assert!(LocationId::new(1, 0) < a);
    }

    #[test]
    fn rooted_collectives() {
        assert!(CollOp::Bcast.is_rooted());
        assert!(CollOp::Reduce.is_rooted());
        assert!(!CollOp::Barrier.is_rooted());
        assert!(!CollOp::Alltoall.is_rooted());
        assert!(!CollOp::Allreduce.is_rooted());
    }

    #[test]
    fn region_names_follow_mpi_convention() {
        assert_eq!(CollOp::Bcast.region_name(), "MPI_Bcast");
        assert_eq!(CollOp::OmpBarrier.region_name(), "omp_barrier");
    }

    #[test]
    fn event_region_accessors() {
        let r = RegionId(4);
        let e = Event::new(VTime::ZERO, EventKind::Enter { region: r });
        assert_eq!(e.enter_region(), Some(r));
        assert_eq!(e.exit_region(), None);
        let x = Event::new(VTime::ZERO, EventKind::Exit { region: r });
        assert_eq!(x.exit_region(), Some(r));
    }

    #[test]
    fn events_roundtrip_serde() {
        let e = Event::new(
            VTime::from_secs(1.5),
            EventKind::Recv {
                from: 1,
                comm: 0,
                tag: 42,
                bytes: 1024,
                posted: VTime::from_secs(1.0),
            },
        );
        let json = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
