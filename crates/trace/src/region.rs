//! Region (code-section) interning.
//!
//! Regions are the call-path atoms of a trace: MPI calls, OpenMP constructs,
//! work phases, and the ATS property functions themselves. Names are
//! interned once per run in a shared [`RegionTable`] so events carry a
//! compact [`RegionId`].

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index into the run's region table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct RegionId(pub u32);

/// Broad classification of a region, used by the analyzer to decide which
/// patterns may apply and by the timeline renderer to pick glyphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Pure computation (`do_work` and friends).
    Work,
    /// MPI point-to-point call.
    MpiP2p,
    /// MPI collective call.
    MpiCollective,
    /// MPI environment management (init/finalize).
    MpiSetup,
    /// OpenMP parallel region.
    OmpParallel,
    /// OpenMP synchronization (barrier, critical wait, lock wait).
    OmpSync,
    /// OpenMP worksharing construct (for/sections/single/master).
    OmpWorkshare,
    /// An ATS performance-property function frame.
    Property,
    /// Anything user-defined.
    User,
}

/// Metadata for one interned region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionMeta {
    /// Interned name, e.g. `"MPI_Recv"` or `"late_sender"`.
    pub name: String,
    /// Classification.
    pub kind: RegionKind,
}

#[derive(Debug, Default)]
struct TableInner {
    by_name: HashMap<String, RegionId>,
    metas: Vec<RegionMeta>,
}

/// A thread-safe interning table shared by all participants of a run.
#[derive(Debug, Clone, Default)]
pub struct RegionTable {
    inner: Arc<RwLock<TableInner>>,
}

impl RegionTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name` with `kind`, returning its id. Re-interning an existing
    /// name returns the original id (the first kind wins).
    pub fn intern(&self, name: &str, kind: RegionKind) -> RegionId {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return id;
        }
        let mut w = self.inner.write();
        if let Some(&id) = w.by_name.get(name) {
            return id;
        }
        let id = RegionId(w.metas.len() as u32);
        w.metas.push(RegionMeta {
            name: name.to_owned(),
            kind,
        });
        w.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an id by exact name.
    pub fn lookup(&self, name: &str) -> Option<RegionId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// The name of `id`, or `"<unknown>"` for a foreign id.
    ///
    /// Returns a borrow instead of cloning: this lookup sits on the
    /// analyzer-report and timeline-render hot paths, where a `String`
    /// allocation per call dominated.
    pub fn name(&self, id: RegionId) -> &str {
        let guard = self.inner.read();
        match guard.metas.get(id.0 as usize) {
            // SAFETY: extending the borrow past the read guard is sound
            // because the table is append-only: `intern` only ever pushes
            // new entries and nothing mutates or removes an existing
            // `RegionMeta`, so the `String`'s heap buffer never moves (a
            // `Vec` reallocation moves the `RegionMeta` structs, not the
            // heap data their `String`s point to). The buffer stays alive
            // for at least `&self`'s lifetime since `self` holds an `Arc`
            // on the table.
            Some(m) => unsafe { &*(m.name.as_str() as *const str) },
            None => "<unknown>",
        }
    }

    /// The kind of `id`.
    pub fn kind(&self, id: RegionId) -> Option<RegionKind> {
        self.inner.read().metas.get(id.0 as usize).map(|m| m.kind)
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.inner.read().metas.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the table contents (for embedding in a [`crate::Trace`]).
    pub fn snapshot(&self) -> Vec<RegionMeta> {
        self.inner.read().metas.clone()
    }

    /// Rebuild a table from a snapshot (when deserializing a trace).
    pub fn from_snapshot(metas: Vec<RegionMeta>) -> Self {
        let by_name = metas
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name.clone(), RegionId(i as u32)))
            .collect();
        RegionTable {
            inner: Arc::new(RwLock::new(TableInner { by_name, metas })),
        }
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let t = RegionTable::new();
        let a = t.intern("MPI_Send", RegionKind::MpiP2p);
        let b = t.intern("MPI_Send", RegionKind::MpiP2p);
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_distinct_ids() {
        let t = RegionTable::new();
        let a = t.intern("a", RegionKind::Work);
        let b = t.intern("b", RegionKind::Work);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "a");
        assert_eq!(t.name(b), "b");
    }

    #[test]
    fn lookup_and_kind() {
        let t = RegionTable::new();
        let id = t.intern("late_sender", RegionKind::Property);
        assert_eq!(t.lookup("late_sender"), Some(id));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.kind(id), Some(RegionKind::Property));
    }

    #[test]
    fn unknown_id_name() {
        let t = RegionTable::new();
        assert_eq!(t.name(RegionId(99)), "<unknown>");
        assert_eq!(t.kind(RegionId(99)), None);
    }

    #[test]
    fn name_reference_survives_table_growth() {
        // `name` hands out a borrow into the table; interning hundreds more
        // regions forces the metas Vec to reallocate repeatedly, which must
        // not invalidate it (the String heap data does not move).
        let t = RegionTable::new();
        let id = t.intern("first", RegionKind::Work);
        let name = t.name(id);
        for i in 0..1000 {
            t.intern(&format!("r{i}"), RegionKind::User);
        }
        assert_eq!(name, "first");
        assert_eq!(t.name(id), "first");
    }

    #[test]
    fn snapshot_roundtrip() {
        let t = RegionTable::new();
        t.intern("x", RegionKind::Work);
        t.intern("y", RegionKind::OmpSync);
        let snap = t.snapshot();
        let t2 = RegionTable::from_snapshot(snap);
        assert_eq!(t2.lookup("x"), Some(RegionId(0)));
        assert_eq!(t2.lookup("y"), Some(RegionId(1)));
        assert_eq!(t2.kind(RegionId(1)), Some(RegionKind::OmpSync));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let t = RegionTable::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        t.intern(&format!("r{}", i % 10), RegionKind::User);
                    }
                });
            }
        });
        assert_eq!(t.len(), 10);
    }
}
