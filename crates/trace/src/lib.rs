//! # ats-trace
//!
//! The event-trace model shared by the ATS-RS substrates and the analyzer.
//!
//! The ATS paper tests *automatic performance analysis tools* — programs
//! that consume event traces (EPILOG/Vampir-style) and diagnose performance
//! properties. ATS-RS therefore needs a trace format sitting between its
//! synthetic test programs and the analyzer under test:
//!
//! * the substrates (`ats-mpi`, `ats-omp`) *record* events through a
//!   [`LocalTrace`] per participant,
//! * a [`TraceCollector`] gathers the per-participant streams into a global
//!   [`Trace`],
//! * the analyzer and the timeline renderer *consume* [`Trace`]s,
//! * [`io`] / [`binfmt`] persist them (JSONL for inspection, the columnar
//!   ATSB binary format for artifacts), and a [`TracePool`] recycles event
//!   buffers between runs so sweeps stop re-growing vectors from zero.
//!
//! Events carry virtual timestamps ([`ats_runtime::VTime`]) and reproduce
//! the information a 2002-era measurement system records: region
//! enter/exit, message send/receive (with communicator, tag, peer and
//! payload size — the paper's §1 "correct sender and receiver ranks,
//! message tags, and communicator IDs"), and collective completion records.

pub mod binfmt;
pub mod collector;
pub mod event;
pub mod io;
pub mod local;
pub mod pool;
pub mod region;
pub mod stats;
pub mod trace;
pub mod wellformed;

pub use collector::TraceCollector;
pub use event::{CollOp, Event, EventKind, LocationId};
pub use io::TraceFormat;
pub use local::LocalTrace;
pub use pool::{PoolStats, TracePool};
pub use region::{RegionId, RegionKind, RegionMeta, RegionTable};
pub use stats::{RegionProfile, TraceStats};
pub use trace::{CommDef, LocationTrace, Trace};
pub use wellformed::{check_wellformed, WellformedError};
