//! Trace well-formedness checking.
//!
//! A synthetic test program is only a valid tool input if its trace is
//! structurally sound. These invariants are asserted by the integration and
//! property-based tests on every trace the substrates produce:
//!
//! 1. per-location timestamps are non-decreasing;
//! 2. enter/exit events are properly nested and balanced;
//! 3. receive completions do not precede their post times;
//! 4. collective completions do not precede their entry times.

use crate::event::EventKind;
use crate::trace::Trace;
use ats_runtime::VTime;
use std::fmt;

/// A structural defect found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellformedError {
    /// Event `index` at `location` goes backwards in time.
    NonMonotoneTime { location: String, index: usize },
    /// Exit without a matching enter, or wrong nesting order.
    UnbalancedExit { location: String, index: usize },
    /// A location ended with open regions.
    UnclosedRegions { location: String, open: usize },
    /// A receive completed before it was posted.
    RecvBeforePost { location: String, index: usize },
    /// A collective completed before this member entered it.
    CollBeforeEntry { location: String, index: usize },
}

impl fmt::Display for WellformedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellformedError::NonMonotoneTime { location, index } => {
                write!(
                    f,
                    "location {location}: event {index} moves backwards in time"
                )
            }
            WellformedError::UnbalancedExit { location, index } => {
                write!(
                    f,
                    "location {location}: event {index} exits an unopened region"
                )
            }
            WellformedError::UnclosedRegions { location, open } => {
                write!(
                    f,
                    "location {location}: trace ends with {open} open regions"
                )
            }
            WellformedError::RecvBeforePost { location, index } => {
                write!(
                    f,
                    "location {location}: recv {index} completes before its post"
                )
            }
            WellformedError::CollBeforeEntry { location, index } => {
                write!(
                    f,
                    "location {location}: collective {index} completes before entry"
                )
            }
        }
    }
}

impl std::error::Error for WellformedError {}

/// Check all well-formedness invariants, returning every violation found.
pub fn check_wellformed(trace: &Trace) -> Vec<WellformedError> {
    let mut errors = Vec::new();
    for loc in &trace.locations {
        let name = loc.location.to_string();
        let mut last = VTime::ZERO;
        let mut stack = Vec::new();
        for (i, ev) in loc.events.iter().enumerate() {
            if ev.time < last {
                errors.push(WellformedError::NonMonotoneTime {
                    location: name.clone(),
                    index: i,
                });
            }
            last = last.max(ev.time);
            match ev.kind {
                EventKind::Enter { region } => stack.push(region),
                EventKind::Exit { region } => {
                    if stack.pop() != Some(region) {
                        errors.push(WellformedError::UnbalancedExit {
                            location: name.clone(),
                            index: i,
                        });
                    }
                }
                EventKind::Recv { posted, .. } => {
                    if ev.time < posted {
                        errors.push(WellformedError::RecvBeforePost {
                            location: name.clone(),
                            index: i,
                        });
                    }
                }
                EventKind::CollEnd { entered, .. } => {
                    if ev.time < entered {
                        errors.push(WellformedError::CollBeforeEntry {
                            location: name.clone(),
                            index: i,
                        });
                    }
                }
                EventKind::Send { .. } => {}
            }
        }
        if !stack.is_empty() {
            errors.push(WellformedError::UnclosedRegions {
                location: name,
                open: stack.len(),
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, LocationId};
    use crate::region::RegionId;
    use crate::trace::LocationTrace;

    fn trace_of(events: Vec<Event>) -> Trace {
        Trace::new(
            vec![],
            vec![LocationTrace {
                location: LocationId::rank(0),
                events,
            }],
        )
    }

    #[test]
    fn clean_trace_passes() {
        let r = RegionId(0);
        let tr = trace_of(vec![
            Event::new(VTime(0), EventKind::Enter { region: r }),
            Event::new(VTime(5), EventKind::Exit { region: r }),
        ]);
        assert!(check_wellformed(&tr).is_empty());
    }

    #[test]
    fn detects_backwards_time() {
        let r = RegionId(0);
        let tr = trace_of(vec![
            Event::new(VTime(5), EventKind::Enter { region: r }),
            Event::new(VTime(1), EventKind::Exit { region: r }),
        ]);
        assert!(matches!(
            check_wellformed(&tr)[0],
            WellformedError::NonMonotoneTime { .. }
        ));
    }

    #[test]
    fn detects_unbalanced_exit() {
        let tr = trace_of(vec![Event::new(
            VTime(0),
            EventKind::Exit {
                region: RegionId(3),
            },
        )]);
        assert!(matches!(
            check_wellformed(&tr)[0],
            WellformedError::UnbalancedExit { .. }
        ));
    }

    #[test]
    fn detects_unclosed_region() {
        let tr = trace_of(vec![Event::new(
            VTime(0),
            EventKind::Enter {
                region: RegionId(0),
            },
        )]);
        assert!(matches!(
            check_wellformed(&tr)[0],
            WellformedError::UnclosedRegions { open: 1, .. }
        ));
    }

    #[test]
    fn detects_recv_before_post() {
        let tr = trace_of(vec![Event::new(
            VTime(1),
            EventKind::Recv {
                from: 0,
                comm: 0,
                tag: 0,
                bytes: 0,
                posted: VTime(2),
            },
        )]);
        assert!(matches!(
            check_wellformed(&tr)[0],
            WellformedError::RecvBeforePost { .. }
        ));
    }

    #[test]
    fn detects_collective_before_entry() {
        let tr = trace_of(vec![Event::new(
            VTime(1),
            EventKind::CollEnd {
                op: crate::event::CollOp::Barrier,
                comm: 0,
                root: None,
                seq: 0,
                bytes: 0,
                entered: VTime(5),
            },
        )]);
        assert!(matches!(
            check_wellformed(&tr)[0],
            WellformedError::CollBeforeEntry { .. }
        ));
    }

    #[test]
    fn errors_display() {
        let e = WellformedError::UnclosedRegions {
            location: "0".into(),
            open: 2,
        };
        assert!(e.to_string().contains("2 open regions"));
    }
}
