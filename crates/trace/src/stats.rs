//! Flat time profiles over traces.
//!
//! These are the "classical" profile numbers (inclusive/exclusive time per
//! region, message counts/volumes) that every performance tool derives
//! before pattern analysis. The analyzer uses them as denominators; tests
//! use them to assert that synthetic programs contain exactly the work that
//! was programmed into them.

use crate::event::{EventKind, LocationId};
use crate::region::RegionId;
use crate::trace::Trace;
use ats_runtime::VDur;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-region aggregate numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionProfile {
    /// Number of completed visits.
    pub visits: u64,
    /// Time between enter and exit, including nested regions.
    pub inclusive: VDur,
    /// Inclusive time minus time spent in nested regions.
    pub exclusive: VDur,
}

/// Message-traffic aggregates for one location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Messages posted.
    pub sends: u64,
    /// Messages delivered.
    pub recvs: u64,
    /// Bytes posted.
    pub bytes_sent: u64,
    /// Bytes delivered.
    pub bytes_received: u64,
    /// Collective completions observed.
    pub collectives: u64,
}

/// Complete flat statistics for a trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// `(location, region) -> profile`.
    pub profiles: HashMap<LocationId, HashMap<RegionId, RegionProfile>>,
    /// Per-location traffic.
    pub messages: HashMap<LocationId, MessageStats>,
    /// Point-to-point traffic matrix: `(sender rank, receiver rank) ->
    /// (messages, bytes)`, from the senders' Send events — the classic
    /// communication-matrix view of trace browsers.
    pub matrix: HashMap<(u32, u32), (u64, u64)>,
}

impl TraceStats {
    /// Compute statistics by a single pass over each location's stream.
    pub fn compute(trace: &Trace) -> Self {
        let mut stats = TraceStats::default();
        for loc in &trace.locations {
            let TraceStats {
                profiles,
                messages,
                matrix,
            } = &mut stats;
            let profile = profiles.entry(loc.location).or_default();
            let msg = messages.entry(loc.location).or_default();
            // (region, enter time, time spent in children)
            let mut stack: Vec<(RegionId, ats_runtime::VTime, VDur)> = Vec::new();
            for ev in &loc.events {
                match ev.kind {
                    EventKind::Enter { region } => stack.push((region, ev.time, VDur::ZERO)),
                    EventKind::Exit { region } => {
                        let (r, t0, child) = stack
                            .pop()
                            .expect("profile pass hit exit without matching enter");
                        debug_assert_eq!(r, region);
                        let incl = ev.time - t0;
                        let p = profile.entry(region).or_default();
                        p.visits += 1;
                        p.inclusive += incl;
                        p.exclusive += incl.saturating_sub(child);
                        if let Some(parent) = stack.last_mut() {
                            parent.2 += incl;
                        }
                    }
                    EventKind::Send { to, bytes, .. } => {
                        msg.sends += 1;
                        msg.bytes_sent += bytes;
                        let cell = matrix.entry((loc.location.rank, to)).or_default();
                        cell.0 += 1;
                        cell.1 += bytes;
                    }
                    EventKind::Recv { bytes, .. } => {
                        msg.recvs += 1;
                        msg.bytes_received += bytes;
                    }
                    EventKind::CollEnd { .. } => msg.collectives += 1,
                }
            }
        }
        stats
    }

    /// Aggregate a region's profile across all locations.
    pub fn region_total(&self, region: RegionId) -> RegionProfile {
        let mut total = RegionProfile::default();
        for per_loc in self.profiles.values() {
            if let Some(p) = per_loc.get(&region) {
                total.visits += p.visits;
                total.inclusive += p.inclusive;
                total.exclusive += p.exclusive;
            }
        }
        total
    }

    /// Exclusive time of `region` at one location (zero if absent).
    pub fn exclusive_at(&self, location: LocationId, region: RegionId) -> VDur {
        self.profiles
            .get(&location)
            .and_then(|m| m.get(&region))
            .map(|p| p.exclusive)
            .unwrap_or(VDur::ZERO)
    }

    /// Total messages sent across all locations.
    pub fn total_sends(&self) -> u64 {
        self.messages.values().map(|m| m.sends).sum()
    }

    /// Total messages received across all locations.
    pub fn total_recvs(&self) -> u64 {
        self.messages.values().map(|m| m.recvs).sum()
    }

    /// Bytes sent from `from` to `to` (zero if no traffic).
    pub fn traffic(&self, from: u32, to: u32) -> (u64, u64) {
        self.matrix.get(&(from, to)).copied().unwrap_or((0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::region::{RegionKind, RegionMeta};
    use crate::trace::LocationTrace;
    use ats_runtime::VTime;

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    fn nested_trace() -> Trace {
        // outer [0,10] containing inner [2,5]
        let regions = vec![
            RegionMeta {
                name: "outer".into(),
                kind: RegionKind::User,
            },
            RegionMeta {
                name: "inner".into(),
                kind: RegionKind::Work,
            },
        ];
        let (o, i) = (RegionId(0), RegionId(1));
        let events = vec![
            Event::new(t(0), EventKind::Enter { region: o }),
            Event::new(t(2), EventKind::Enter { region: i }),
            Event::new(t(5), EventKind::Exit { region: i }),
            Event::new(t(10), EventKind::Exit { region: o }),
        ];
        Trace::new(
            regions,
            vec![LocationTrace {
                location: LocationId::rank(0),
                events,
            }],
        )
    }

    #[test]
    fn inclusive_exclusive_split() {
        let stats = TraceStats::compute(&nested_trace());
        let loc = LocationId::rank(0);
        let outer = stats.profiles[&loc][&RegionId(0)];
        let inner = stats.profiles[&loc][&RegionId(1)];
        assert_eq!(outer.inclusive, VDur::from_millis(10));
        assert_eq!(outer.exclusive, VDur::from_millis(7));
        assert_eq!(inner.inclusive, VDur::from_millis(3));
        assert_eq!(inner.exclusive, VDur::from_millis(3));
        assert_eq!(outer.visits, 1);
    }

    #[test]
    fn message_stats_counted() {
        let regions = vec![];
        let events = vec![
            Event::new(
                t(0),
                EventKind::Send {
                    to: 1,
                    comm: 0,
                    tag: 0,
                    bytes: 100,
                },
            ),
            Event::new(
                t(1),
                EventKind::Recv {
                    from: 1,
                    comm: 0,
                    tag: 0,
                    bytes: 200,
                    posted: t(0),
                },
            ),
        ];
        let trace = Trace::new(
            regions,
            vec![LocationTrace {
                location: LocationId::rank(0),
                events,
            }],
        );
        let stats = TraceStats::compute(&trace);
        let m = stats.messages[&LocationId::rank(0)];
        assert_eq!(m.sends, 1);
        assert_eq!(m.recvs, 1);
        assert_eq!(m.bytes_sent, 100);
        assert_eq!(m.bytes_received, 200);
        assert_eq!(stats.total_sends(), 1);
        assert_eq!(stats.total_recvs(), 1);
    }

    #[test]
    fn traffic_matrix_accumulates_per_pair() {
        let events = vec![
            Event::new(
                t(0),
                EventKind::Send {
                    to: 1,
                    comm: 0,
                    tag: 0,
                    bytes: 100,
                },
            ),
            Event::new(
                t(1),
                EventKind::Send {
                    to: 1,
                    comm: 0,
                    tag: 0,
                    bytes: 50,
                },
            ),
            Event::new(
                t(2),
                EventKind::Send {
                    to: 2,
                    comm: 0,
                    tag: 0,
                    bytes: 7,
                },
            ),
        ];
        let trace = Trace::new(
            vec![],
            vec![LocationTrace {
                location: LocationId::rank(0),
                events,
            }],
        );
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.traffic(0, 1), (2, 150));
        assert_eq!(stats.traffic(0, 2), (1, 7));
        assert_eq!(stats.traffic(1, 0), (0, 0));
    }

    #[test]
    fn region_total_aggregates_locations() {
        let regions = vec![RegionMeta {
            name: "w".into(),
            kind: RegionKind::Work,
        }];
        let mk = |rank, a, b| LocationTrace {
            location: LocationId::rank(rank),
            events: vec![
                Event::new(
                    t(a),
                    EventKind::Enter {
                        region: RegionId(0),
                    },
                ),
                Event::new(
                    t(b),
                    EventKind::Exit {
                        region: RegionId(0),
                    },
                ),
            ],
        };
        let trace = Trace::new(regions, vec![mk(0, 0, 3), mk(1, 0, 5)]);
        let stats = TraceStats::compute(&trace);
        let total = stats.region_total(RegionId(0));
        assert_eq!(total.visits, 2);
        assert_eq!(total.inclusive, VDur::from_millis(8));
    }

    #[test]
    fn exclusive_at_missing_is_zero() {
        let stats = TraceStats::compute(&nested_trace());
        assert_eq!(
            stats.exclusive_at(LocationId::rank(9), RegionId(0)),
            VDur::ZERO
        );
    }
}
