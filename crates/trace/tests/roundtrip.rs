//! Property tests for the ATSB binary codec: encode/decode is lossless
//! over arbitrary well-formed traces, and corrupt input of any shape
//! produces a clean error, never a panic.

use ats_runtime::VTime;
use ats_trace::binfmt;
use ats_trace::io::{read_jsonl, write_jsonl};
use ats_trace::{
    CollOp, CommDef, Event, EventKind, LocationId, LocationTrace, RegionId, RegionKind, RegionMeta,
    Trace,
};
use proptest::prelude::*;

const KINDS: [RegionKind; 9] = [
    RegionKind::Work,
    RegionKind::MpiP2p,
    RegionKind::MpiCollective,
    RegionKind::MpiSetup,
    RegionKind::OmpParallel,
    RegionKind::OmpSync,
    RegionKind::OmpWorkshare,
    RegionKind::Property,
    RegionKind::User,
];

const OPS: [CollOp; 15] = [
    CollOp::Barrier,
    CollOp::Bcast,
    CollOp::Scatter,
    CollOp::Scatterv,
    CollOp::Gather,
    CollOp::Gatherv,
    CollOp::Reduce,
    CollOp::Allreduce,
    CollOp::Allgather,
    CollOp::Alltoall,
    CollOp::Alltoallv,
    CollOp::Scan,
    CollOp::OmpBarrier,
    CollOp::OmpFork,
    CollOp::OmpJoin,
];

fn arb_region_kind() -> impl Strategy<Value = RegionKind> {
    (0..KINDS.len()).prop_map(|i| KINDS[i])
}

fn arb_coll_op() -> impl Strategy<Value = CollOp> {
    (0..OPS.len()).prop_map(|i| OPS[i])
}

fn arb_event_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        (0u32..16).prop_map(|r| EventKind::Enter {
            region: RegionId(r)
        }),
        (0u32..16).prop_map(|r| EventKind::Exit {
            region: RegionId(r)
        }),
        (any::<u32>(), any::<u32>(), any::<i32>(), any::<u64>()).prop_map(
            |(to, comm, tag, bytes)| EventKind::Send {
                to,
                comm,
                tag,
                bytes
            }
        ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<i32>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(from, comm, tag, bytes, posted)| EventKind::Recv {
                from,
                comm,
                tag,
                bytes,
                posted: VTime(posted),
            }),
        (
            arb_coll_op(),
            any::<u32>(),
            proptest::option::of(any::<u32>()),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(op, comm, root, seq, bytes, entered)| EventKind::CollEnd {
                op,
                comm,
                root,
                seq,
                bytes,
                entered: VTime(entered),
            }),
    ]
}

/// Arbitrary traces in the canonical form `Trace::with_comms` produces:
/// unique sorted comm ids, unique sorted locations, per-location monotone
/// timestamps (built from prefix-summed deltas). Payload fields span their
/// full value ranges.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let regions = proptest::collection::vec(
        ("[a-zA-Z0-9_]{0,12}", arb_region_kind())
            .prop_map(|(name, kind)| RegionMeta { name, kind }),
        0..6,
    );
    let comms =
        proptest::collection::btree_map(0u32..32, proptest::collection::vec(0u32..64, 0..8), 0..4)
            .prop_map(|m| {
                m.into_iter()
                    .map(|(id, members)| CommDef { id, members })
                    .collect::<Vec<_>>()
            });
    let locations = proptest::collection::btree_map(
        (0u32..32, 0u32..4),
        proptest::collection::vec((0u64..1_000_000_000, arb_event_kind()), 0..40),
        0..5,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|((rank, thread), deltas)| {
                let mut t = 0u64;
                let events = deltas
                    .into_iter()
                    .map(|(d, kind)| {
                        t += d;
                        Event::new(VTime(t), kind)
                    })
                    .collect();
                LocationTrace {
                    location: LocationId::new(rank, thread),
                    events,
                }
            })
            .collect::<Vec<_>>()
    });
    (regions, comms, locations).prop_map(|(r, c, l)| Trace::with_comms(r, c, l))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_roundtrip_equals_original(tr in arb_trace()) {
        let back = binfmt::decode(&binfmt::encode(&tr)).unwrap();
        prop_assert_eq!(&back.regions, &tr.regions);
        prop_assert_eq!(&back.comms, &tr.comms);
        prop_assert_eq!(&back.locations, &tr.locations);
    }

    #[test]
    fn jsonl_and_binary_decode_to_the_same_trace(tr in arb_trace()) {
        let mut jsonl = Vec::new();
        write_jsonl(&tr, &mut jsonl).unwrap();
        let via_jsonl = read_jsonl(jsonl.as_slice()).unwrap();
        let via_binary = binfmt::decode(&binfmt::encode(&tr)).unwrap();
        prop_assert_eq!(&via_jsonl.regions, &via_binary.regions);
        prop_assert_eq!(&via_jsonl.comms, &via_binary.comms);
        prop_assert_eq!(&via_jsonl.locations, &via_binary.locations);
    }

    #[test]
    fn every_truncation_errors_cleanly(tr in arb_trace(), frac in 0.0f64..1.0) {
        let full = binfmt::encode(&tr);
        let cut = ((full.len() as f64) * frac) as usize;
        if cut < full.len() {
            prop_assert!(binfmt::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn random_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Either a clean error or (vanishingly unlikely) a parse; no panic,
        // no unbounded allocation.
        let _ = binfmt::decode(&data);
    }

    #[test]
    fn single_byte_corruption_never_panics(
        tr in arb_trace(),
        idx in any::<proptest::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let mut data = binfmt::encode(&tr).to_vec();
        if !data.is_empty() {
            let i = idx.index(data.len());
            data[i] = byte;
            let _ = binfmt::decode(&data);
        }
    }
}
