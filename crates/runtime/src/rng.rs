//! Lock-free, splittable pseudo-random number generation.
//!
//! The ATS paper reports an instructive implementation bug: its first
//! `do_work` used the libc `rand()`, whose thread-safe variant serializes
//! all OpenMP threads on the hidden seed lock — turning every parallel work
//! region into an accidental *serialization* performance property. The fix
//! was "our own simple (but efficient, while lock-free) parallel random
//! generator" (paper §3.1.1). This module is that generator for ATS-RS:
//! a SplitMix64 stream per participant, split deterministically from a root
//! seed so that rank/thread streams are independent and reproducible.

/// SplitMix64: a tiny, fast, statistically solid 64-bit generator.
///
/// Each simulated participant owns its own `SplitMix64`, so random work
/// access patterns never share mutable state across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derive an independent stream for participant `index` (e.g. a global
    /// rank or a (rank, thread) pair encoded by the caller). Streams derived
    /// from the same root with different indices are decorrelated by an
    /// extra mixing round.
    pub fn split(root_seed: u64, index: u64) -> Self {
        let mut g = SplitMix64::new(root_seed ^ mix(index.wrapping_add(GOLDEN_GAMMA)));
        // Burn one output so adjacent indices diverge immediately.
        g.next_u64();
        g
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix(self.state)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses the widening-multiply technique; the modulo bias is at most
    /// `bound / 2^64`, far below anything observable here.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be nonzero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut a = SplitMix64::split(7, 0);
        let mut b = SplitMix64::split(7, 1);
        let eq = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(eq, 0, "adjacent split streams should not collide");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut g = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(g.next_below(10) < 10);
        }
    }

    #[test]
    fn next_below_covers_range() {
        let mut g = SplitMix64::new(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[g.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut g = SplitMix64::new(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn known_vector_stability() {
        // Pin the output sequence: traces embed RNG-driven choices, so a
        // silent generator change would invalidate recorded experiments.
        let mut g = SplitMix64::new(0);
        let first: Vec<u64> = (0..3).map(|_| g.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F
            ]
        );
    }
}
