//! Specification of (sequential) work — the lowest module of the ATS stack.
//!
//! The paper's `do_work(double secs)` consumes a requested amount of CPU
//! time "without actually calling time measuring functions", using a loop of
//! random reads and writes over two arrays large enough to defeat the cache,
//! calibrated once at installation time (paper §3.1.1).
//!
//! ATS-RS provides both that design and a stronger one:
//!
//! * [`WorkMode::Virtual`] — `do_work(d)` simply *is* `d`: the caller's
//!   virtual clock advances by exactly the requested amount. This removes
//!   the paper's acknowledged calibration noise entirely and makes every
//!   severity programmed into a test case exact.
//! * [`WorkMode::Real`] — a faithful port of the calibrated busy loop, for
//!   wall-clock benchmarking of the suite and for overhead experiments.
//!   Each engine owns its RNG ([`crate::SplitMix64`]), reproducing the
//!   paper's lock-free-parallel-RNG fix.

use crate::rng::SplitMix64;
use crate::time::VDur;
use std::time::Instant;

/// How `do_work` consumes the requested time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkMode {
    /// Advance virtual time exactly; burn no host CPU.
    Virtual,
    /// Burn host CPU with the calibrated random-access loop.
    Real,
}

/// Size (in `u64` elements) of each of the two scratch arrays used by the
/// real busy loop. 1 MiB per array — large relative to L1/L2, matching the
/// paper's "relatively large size of the arrays" requirement.
const ARRAY_WORDS: usize = 128 * 1024;

/// Iterations executed per calibration probe.
const PROBE_ITERS: u64 = 200_000;

/// A per-participant work generator.
///
/// Engines are cheap to construct in `Virtual` mode and allocate their
/// scratch arrays lazily on first real-mode use.
#[derive(Debug)]
pub struct WorkEngine {
    mode: WorkMode,
    rng: SplitMix64,
    /// Calibrated busy-loop iterations per virtual second (real mode only).
    iters_per_sec: f64,
    scratch: Option<Box<Scratch>>,
    /// Total virtual work consumed through this engine.
    consumed: VDur,
}

#[derive(Debug)]
struct Scratch {
    a: Vec<u64>,
    b: Vec<u64>,
}

impl WorkEngine {
    /// Create an engine for one participant. `seed`/`stream` feed the
    /// split RNG so that participants never share random state.
    pub fn new(mode: WorkMode, seed: u64, stream: u64) -> Self {
        WorkEngine {
            mode,
            rng: SplitMix64::split(seed, stream),
            iters_per_sec: DEFAULT_ITERS_PER_SEC,
            scratch: None,
            consumed: VDur::ZERO,
        }
    }

    /// The engine's mode.
    pub fn mode(&self) -> WorkMode {
        self.mode
    }

    /// Install a calibration result (iterations per second) obtained from
    /// [`calibrate`]. Only meaningful in real mode.
    pub fn set_calibration(&mut self, iters_per_sec: f64) {
        assert!(
            iters_per_sec.is_finite() && iters_per_sec > 0.0,
            "calibration must be positive and finite"
        );
        self.iters_per_sec = iters_per_sec;
    }

    /// Consume `amount` of work and return the duration by which the
    /// caller's virtual clock must advance (always exactly `amount`).
    ///
    /// This is the ATS `do_work`: in virtual mode it is pure accounting; in
    /// real mode the calibrated loop burns approximately the same wall time.
    pub fn do_work(&mut self, amount: VDur) -> VDur {
        self.consumed += amount;
        if self.mode == WorkMode::Real && !amount.is_zero() {
            let iters = (amount.as_secs() * self.iters_per_sec).round() as u64;
            self.burn(iters);
        }
        amount
    }

    /// Total virtual work consumed so far.
    pub fn consumed(&self) -> VDur {
        self.consumed
    }

    /// Direct access to the participant's private RNG stream.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }

    /// Execute `iters` iterations of the paper's random read/write loop.
    fn burn(&mut self, iters: u64) {
        let scratch = self.scratch.get_or_insert_with(|| {
            Box::new(Scratch {
                a: vec![1; ARRAY_WORDS],
                b: vec![1; ARRAY_WORDS],
            })
        });
        let mask = (ARRAY_WORDS - 1) as u64;
        let mut acc = self.rng.next_u64() | 1;
        for _ in 0..iters {
            // One random read and one random write per iteration; the
            // data dependence through `acc` defeats vectorization, the
            // random indices defeat the prefetcher — per the paper, the
            // loop's speed should not depend on cache behaviour.
            let i = (acc ^ (acc >> 17)) & mask;
            let j = acc.wrapping_mul(GOLDEN) >> 47 & mask;
            let v = scratch.a[i as usize];
            acc = acc.wrapping_add(v ^ GOLDEN).rotate_left(13);
            scratch.b[j as usize] = acc;
        }
        // Publish a data dependence on the result so the loop cannot be
        // optimized away.
        std::hint::black_box(acc);
        std::hint::black_box(&scratch.b[0]);
    }
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fallback iterations-per-second used before calibration: deliberately
/// conservative (a ~2002 CPU) so uncalibrated real runs err on the side of
/// too much work rather than vanishing workloads.
pub const DEFAULT_ITERS_PER_SEC: f64 = 5.0e7;

/// Measure the real-mode loop rate on this host: the ATS "configuration
/// phase during installation". Runs a handful of probes and returns the
/// median iterations-per-second.
pub fn calibrate() -> f64 {
    let mut engine = WorkEngine::new(WorkMode::Real, 0xCA11_B8A7E, 0);
    // Warm up: allocate scratch and fault pages in.
    engine.burn(PROBE_ITERS / 4);
    let mut rates = Vec::with_capacity(5);
    for _ in 0..5 {
        let t0 = Instant::now();
        engine.burn(PROBE_ITERS);
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        rates.push(PROBE_ITERS as f64 / dt);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[rates.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_work_is_exact_accounting() {
        let mut e = WorkEngine::new(WorkMode::Virtual, 1, 0);
        assert_eq!(e.do_work(VDur::from_millis(7)), VDur::from_millis(7));
        assert_eq!(e.do_work(VDur::from_millis(3)), VDur::from_millis(3));
        assert_eq!(e.consumed(), VDur::from_millis(10));
    }

    #[test]
    fn virtual_mode_allocates_no_scratch() {
        let mut e = WorkEngine::new(WorkMode::Virtual, 1, 0);
        e.do_work(VDur::from_secs(1000.0)); // would burn forever in real mode
        assert!(e.scratch.is_none());
    }

    #[test]
    fn zero_work_is_free_in_real_mode() {
        let mut e = WorkEngine::new(WorkMode::Real, 1, 0);
        e.do_work(VDur::ZERO);
        assert!(e.scratch.is_none(), "zero work must not touch the loop");
    }

    #[test]
    fn real_mode_burns_measurable_time() {
        let mut e = WorkEngine::new(WorkMode::Real, 1, 0);
        e.set_calibration(calibrate());
        let t0 = Instant::now();
        e.do_work(VDur::from_millis(20));
        let elapsed = t0.elapsed().as_millis();
        // Calibration is approximate (as the paper says); accept 2x error.
        assert!(
            (5..=200).contains(&elapsed),
            "20ms of calibrated work took {elapsed}ms"
        );
    }

    #[test]
    fn calibration_is_positive() {
        let rate = calibrate();
        assert!(rate > 1e5, "implausibly slow host: {rate} iters/s");
    }

    #[test]
    #[should_panic(expected = "calibration must be positive")]
    fn rejects_nonpositive_calibration() {
        let mut e = WorkEngine::new(WorkMode::Real, 1, 0);
        e.set_calibration(0.0);
    }

    #[test]
    fn engines_with_different_streams_have_different_rngs() {
        let mut a = WorkEngine::new(WorkMode::Virtual, 9, 0);
        let mut b = WorkEngine::new(WorkMode::Virtual, 9, 1);
        assert_ne!(a.rng().next_u64(), b.rng().next_u64());
    }
}
