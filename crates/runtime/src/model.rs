//! The machine cost model that drives virtual-time communication.
//!
//! ATS-RS uses a LogGP-flavoured model: a fixed per-message latency `L`,
//! per-message send/receive CPU overheads `o_s`/`o_r`, and a per-byte gap
//! `G` (inverse bandwidth). Collective operations are priced as trees of
//! point-to-point stages. The model is deliberately simple — the test suite
//! needs *controllable and explainable* wait states, not cycle accuracy —
//! but every parameter is configurable so experiments can explore how
//! analysis tools behave across machines with different communication
//! characteristics.

use crate::time::VDur;
use serde::{Deserialize, Serialize};

/// LogGP-style communication cost parameters plus the shared-memory
/// (OpenMP-substrate) overheads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// End-to-end wire latency per message hop (LogGP `L`).
    pub latency: VDur,
    /// CPU time consumed by the sender to inject a message (LogGP `o_s`).
    pub send_overhead: VDur,
    /// CPU time consumed by the receiver to extract a message (LogGP `o_r`).
    pub recv_overhead: VDur,
    /// Transfer cost per byte in nanoseconds (LogGP `G`).
    pub ns_per_byte: f64,
    /// Messages at most this many bytes are sent eagerly (buffered at the
    /// receiver); larger messages use a rendezvous protocol in which the
    /// sender blocks until the receive is posted. The rendezvous path is
    /// what makes the *Late Receiver* property observable.
    pub eager_threshold: usize,
    /// Cost of one stage of a tree-structured collective, excluding data
    /// transfer (synchronization/bookkeeping per tree level).
    pub collective_stage: VDur,
    /// Overhead for forking an OpenMP-style thread team.
    pub fork_overhead: VDur,
    /// Overhead for joining an OpenMP-style thread team.
    pub join_overhead: VDur,
    /// Cost per stage of a shared-memory barrier.
    pub barrier_stage: VDur,
    /// Cost of dispatching one chunk in a dynamic/guided worksharing loop.
    pub chunk_dispatch: VDur,
    /// Cost of acquiring an uncontended lock / entering a critical section.
    pub lock_overhead: VDur,
}

impl Default for MachineModel {
    /// Defaults loosely modelled on a 2002-era cluster interconnect
    /// (Myrinet-class: ~10us latency, ~250 MB/s) — the setting in which the
    /// ATS prototype and the EXPERT tool were developed. Virtual-time
    /// experiments are insensitive to the absolute values; what matters is
    /// that work imbalances (milliseconds) dominate transport costs
    /// (microseconds), as they do here.
    fn default() -> Self {
        MachineModel {
            latency: VDur::from_micros(10),
            send_overhead: VDur::from_micros(2),
            recv_overhead: VDur::from_micros(2),
            ns_per_byte: 4.0,
            eager_threshold: 64 * 1024,
            collective_stage: VDur::from_micros(12),
            fork_overhead: VDur::from_micros(5),
            join_overhead: VDur::from_micros(3),
            barrier_stage: VDur::from_micros(1),
            chunk_dispatch: VDur::from_nanos(300),
            lock_overhead: VDur::from_nanos(100),
        }
    }
}

impl MachineModel {
    /// A model in which all communication and runtime overheads are zero.
    ///
    /// Useful in unit tests: with a zero model, every wait state observed in
    /// a trace is *exactly* the programmed imbalance, with no transport
    /// noise.
    pub fn zero() -> Self {
        MachineModel {
            latency: VDur::ZERO,
            send_overhead: VDur::ZERO,
            recv_overhead: VDur::ZERO,
            ns_per_byte: 0.0,
            eager_threshold: 64 * 1024,
            collective_stage: VDur::ZERO,
            fork_overhead: VDur::ZERO,
            join_overhead: VDur::ZERO,
            barrier_stage: VDur::ZERO,
            chunk_dispatch: VDur::ZERO,
            lock_overhead: VDur::ZERO,
        }
    }

    /// Pure data-transfer time for a message body of `bytes`.
    pub fn transfer(&self, bytes: usize) -> VDur {
        VDur::from_nanos((bytes as f64 * self.ns_per_byte).round() as u64)
    }

    /// Total wire time for a point-to-point message: latency plus transfer.
    pub fn p2p_wire(&self, bytes: usize) -> VDur {
        self.latency + self.transfer(bytes)
    }

    /// True if a message of this size uses the eager protocol.
    pub fn is_eager(&self, bytes: usize) -> bool {
        bytes <= self.eager_threshold
    }

    /// Number of stages in a binomial tree over `p` participants.
    pub fn tree_stages(&self, p: usize) -> u32 {
        if p <= 1 {
            0
        } else {
            usize::BITS - (p - 1).leading_zeros()
        }
    }

    /// Cost of one level of a tree collective that moves `bytes` per hop.
    pub fn stage_cost(&self, bytes: usize) -> VDur {
        self.collective_stage + self.transfer(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_linear_in_bytes() {
        let m = MachineModel::default();
        assert_eq!(m.transfer(0), VDur::ZERO);
        assert_eq!(m.transfer(1000).as_nanos(), 4000);
        assert_eq!(m.transfer(2000).as_nanos(), 8000);
    }

    #[test]
    fn p2p_wire_adds_latency() {
        let m = MachineModel::default();
        assert_eq!(m.p2p_wire(0), m.latency);
        assert_eq!(m.p2p_wire(1000), m.latency + m.transfer(1000));
    }

    #[test]
    fn eager_threshold_boundary() {
        let m = MachineModel::default();
        assert!(m.is_eager(m.eager_threshold));
        assert!(!m.is_eager(m.eager_threshold + 1));
    }

    #[test]
    fn tree_stages_log2_ceiling() {
        let m = MachineModel::default();
        assert_eq!(m.tree_stages(1), 0);
        assert_eq!(m.tree_stages(2), 1);
        assert_eq!(m.tree_stages(3), 2);
        assert_eq!(m.tree_stages(4), 2);
        assert_eq!(m.tree_stages(5), 3);
        assert_eq!(m.tree_stages(8), 3);
        assert_eq!(m.tree_stages(9), 4);
        assert_eq!(m.tree_stages(16), 4);
    }

    #[test]
    fn zero_model_prices_everything_at_zero() {
        let m = MachineModel::zero();
        assert_eq!(m.p2p_wire(1 << 20), VDur::ZERO);
        assert_eq!(m.stage_cost(4096), VDur::ZERO);
    }

    #[test]
    fn model_roundtrips_through_serde() {
        let m = MachineModel::default();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
