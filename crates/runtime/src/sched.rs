//! Discrete-event rank scheduler: thousands of simulated participants in
//! one OS thread.
//!
//! The thread backend gives every simulated MPI rank its own OS thread and
//! lets the kernel interleave them; blocking is a parked thread and every
//! message pays a condvar round-trip. That caps scenarios at a few hundred
//! ranks. This module provides the alternative the suite's virtual-time
//! semantics make possible: each rank becomes a cheap stackful coroutine,
//! and a single scheduler drives them from a binary heap of runnable tasks
//! keyed by `(virtual clock, FIFO sequence)`. A blocked `recv` or barrier
//! is a heap re-insertion instead of a parked thread, so per-event overhead
//! drops to a heap pop plus a user-space context switch and rank counts
//! jump to 10k+.
//!
//! # Task states and event-queue ordering
//!
//! A task is *Ready* (queued in the heap), *Running* (exactly one at a
//! time), *Blocked* (waiting on a [`WaitSet`]), or *Finished*. The heap
//! pops the minimum `(clock, seq)` key: `clock` is the task's virtual
//! resume bound and `seq` a global push counter, so equal-clock tasks run
//! in FIFO order (spawn order on the first round). When a waker at virtual
//! time `t` notifies a task blocked at time `b`, the task re-enters the
//! heap at `max(b, t)` — it can never run "before" the event that released
//! it. Re-notifying an already-Ready task with an earlier bound lowers its
//! key (lazy decrease-key: stale heap entries are skipped on pop by
//! comparing against the task's current `ready_key`).
//!
//! # Non-overtaking sketch
//!
//! Pop keys are non-decreasing over a run: every effect of a task popped at
//! key `k` happens at a virtual clock `≥ k` (work only advances clocks;
//! message completions and collective exits are `max`-based), so every
//! wake it issues carries a bound `≥ k`. Hence when a receiver resumes at
//! key `k_R`, any message a still-pending task could later send has post
//! time `≥ k_R`, and picking the minimum `(send_post, src)` among queued
//! matches reproduces virtual-time arrival order exactly — the property
//! the thread backend can only approximate with a wall-clock grace window.
//!
//! Deadlock detection is structural and instant: an empty heap with live
//! tasks *is* a deadlock, no real-time budget needed. Cleanup unwinds every
//! live coroutine (destructors run, stacks are reclaimed) by resuming it
//! with a cancellation flag that turns the next block into a silent panic.

use crate::time::VTime;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::any::Any;
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Which execution substrate drives the simulated ranks.
///
/// Both backends produce byte-identical traces on race-free programs (the
/// whole catalog); the event backend is one to two orders of magnitude
/// faster and scales to 10k+ ranks. The thread backend is retained for one
/// release as a differential-testing oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// One OS thread per rank, parked on condvars while blocked.
    Thread,
    /// One coroutine per rank, driven by the discrete-event scheduler.
    #[default]
    Event,
}

impl SimBackend {
    /// Is the coroutine context switch implemented for this target?
    pub fn event_supported() -> bool {
        cfg!(any(target_arch = "x86_64", target_arch = "aarch64"))
    }

    /// The backend that will actually run: falls back to [`SimBackend::Thread`]
    /// on targets without a context-switch implementation.
    pub fn effective(self) -> SimBackend {
        match self {
            SimBackend::Event if !Self::event_supported() => SimBackend::Thread,
            b => b,
        }
    }

    /// Stable lowercase name, for manifests and stats documents.
    pub fn label(self) -> &'static str {
        match self {
            SimBackend::Thread => "thread",
            SimBackend::Event => "event",
        }
    }
}

impl std::fmt::Display for SimBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SimBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "thread" => Ok(SimBackend::Thread),
            "event" => Ok(SimBackend::Event),
            other => Err(format!(
                "unknown backend {other:?} (expected \"thread\" or \"event\")"
            )),
        }
    }
}

/// Identifies a task within one [`run_tasks`] invocation (its spawn index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// What one scheduler run did, for the observability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Number of tasks (ranks) driven to completion.
    pub tasks: usize,
    /// Coroutine resumes executed (heap pops that ran a task).
    pub events: u64,
    /// Deepest the ready queue ever got (including lazily-deleted entries).
    pub max_ready: usize,
}

/// Minimum coroutine stack; requests below this are rounded up.
pub const MIN_STACK_BYTES: usize = 32 * 1024;

const CANARY: u64 = 0x5AFE_57AC_CA4A_B1E5;

/// Payload used to unwind cancelled tasks; never escapes [`run_tasks`].
struct CancelToken;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Ready,
    Running,
    Blocked(&'static str),
    Finished,
}

type HeapKey = (VTime, u64);

struct Task {
    /// Saved stack pointer while suspended.
    sp: *mut u8,
    stack: Stack,
    closure: Option<Box<dyn FnOnce() + 'static>>,
    state: TaskState,
    /// Virtual clock at the last `block()` / `yield_at()`.
    block_clock: VTime,
    /// Current heap key while Ready; stale heap entries fail this check.
    ready_key: HeapKey,
    cancelled: bool,
    panic: Option<Box<dyn Any + Send>>,
    core: *mut SchedCore,
}

struct SchedCore {
    sched_sp: *mut u8,
    current: usize,
    tasks: Vec<Box<Task>>,
    ready: BinaryHeap<Reverse<(HeapKey, usize)>>,
    /// Global push counter: FIFO tie-break among equal clocks.
    seq: u64,
    live: usize,
    events: u64,
    max_ready: usize,
}

thread_local! {
    static ACTIVE: Cell<*mut SchedCore> = const { Cell::new(std::ptr::null_mut()) };
}

fn active() -> *mut SchedCore {
    ACTIVE.with(|a| a.get())
}

/// The id of the simulation task currently executing on this thread, or
/// `None` when called from an ordinary OS thread (thread backend, OpenMP
/// team members, the test harness itself).
pub fn current() -> Option<TaskId> {
    let core = active();
    if core.is_null() {
        return None;
    }
    // SAFETY: non-null ACTIVE points at the SchedCore owned by the
    // `run_tasks` frame live on this thread.
    let id = unsafe { (*core).current };
    (id != usize::MAX).then_some(TaskId(id))
}

/// Is this thread currently inside a simulation task?
pub fn in_task() -> bool {
    current().is_some()
}

/// Suspend the current task until [`wake`]d, recording its virtual clock
/// (the resume bound) and a human-readable reason for deadlock reports.
///
/// # Panics
/// Panics (via a silent cancellation unwind) if the scheduler is tearing
/// the run down; must be called from inside a task.
pub fn block(clock: VTime, reason: &'static str) {
    let core = active();
    assert!(
        !core.is_null(),
        "sched::block called outside a simulation task"
    );
    // SAFETY: single-threaded scheduler; no reference is held across the
    // context switch below.
    unsafe {
        let id = (*core).current;
        assert_ne!(id, usize::MAX, "sched::block called off-task");
        {
            let c = &mut *core;
            let t = &mut *c.tasks[id];
            if t.cancelled {
                resume_unwind(Box::new(CancelToken));
            }
            t.state = TaskState::Blocked(reason);
            t.block_clock = clock;
        }
        switch_to_scheduler(core, id);
        let c = &mut *core;
        if c.tasks[id].cancelled {
            resume_unwind(Box::new(CancelToken));
        }
    }
}

/// Re-queue the current task at virtual time `clock` and let others run —
/// a timed self-wake, used for pure virtual-clock events.
pub fn yield_at(clock: VTime) {
    let core = active();
    assert!(
        !core.is_null(),
        "sched::yield_at called outside a simulation task"
    );
    // SAFETY: as in `block`.
    unsafe {
        let id = (*core).current;
        assert_ne!(id, usize::MAX, "sched::yield_at called off-task");
        {
            let c = &mut *core;
            let key = (clock, c.seq);
            c.seq += 1;
            let t = &mut c.tasks[id];
            if t.cancelled {
                resume_unwind(Box::new(CancelToken));
            }
            t.state = TaskState::Ready;
            t.block_clock = clock;
            t.ready_key = key;
            c.ready.push(Reverse((key, id)));
            c.max_ready = c.max_ready.max(c.ready.len());
        }
        switch_to_scheduler(core, id);
        let c = &mut *core;
        if c.tasks[id].cancelled {
            resume_unwind(Box::new(CancelToken));
        }
    }
}

/// Make a blocked task runnable again, no earlier than virtual time `at`
/// (the waker's clock): the task re-enters the heap at
/// `max(its block clock, at)`. Waking an already-Ready task with an
/// earlier bound lowers its key; anything else is a no-op.
pub fn wake(id: TaskId, at: VTime) {
    let core = active();
    assert!(
        !core.is_null(),
        "sched::wake for task {id:?} from a thread that is not running the scheduler"
    );
    // SAFETY: single-threaded scheduler state, short-lived borrow.
    unsafe {
        let c = &mut *core;
        let Some(t) = c.tasks.get_mut(id.0) else {
            return;
        };
        let bound = t.block_clock.max(at);
        match t.state {
            TaskState::Blocked(_) => {
                let key = (bound, c.seq);
                c.seq += 1;
                t.state = TaskState::Ready;
                t.ready_key = key;
                c.ready.push(Reverse((key, id.0)));
                c.max_ready = c.max_ready.max(c.ready.len());
            }
            TaskState::Ready if bound < t.ready_key.0 => {
                let key = (bound, c.seq);
                c.seq += 1;
                t.ready_key = key;
                c.ready.push(Reverse((key, id.0)));
                c.max_ready = c.max_ready.max(c.ready.len());
            }
            _ => {}
        }
    }
}

/// Run `closures` as cooperatively-scheduled tasks (task id = spawn index,
/// all starting at virtual time zero) until every task finishes.
///
/// If a task panics, the remaining tasks are unwound (their destructors
/// run) and the original panic is propagated. If no task is runnable while
/// some are still alive, the run is torn down the same way and a deadlock
/// panic describing every blocked task is raised.
///
/// # Panics
/// Panics if nested inside another `run_tasks`, or on a target without a
/// context-switch implementation (see [`SimBackend::event_supported`]).
pub fn run_tasks<'scope>(
    stack_bytes: usize,
    closures: Vec<Box<dyn FnOnce() + 'scope>>,
) -> SchedStats {
    assert!(
        active().is_null(),
        "run_tasks may not be nested inside a simulation task"
    );
    assert!(
        SimBackend::event_supported(),
        "the event backend has no context switch for this target; \
         use SimBackend::effective() to fall back to threads"
    );
    let n = closures.len();
    // SAFETY: every coroutine is driven to completion (normal return,
    // panic, or cancellation unwind) before this function returns, so no
    // closure or borrow within it outlives `'scope`.
    let closures: Vec<Box<dyn FnOnce() + 'static>> = closures
        .into_iter()
        .map(|c| unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + 'scope>, Box<dyn FnOnce() + 'static>>(c)
        })
        .collect();

    let stack_bytes = stack_bytes.max(MIN_STACK_BYTES);
    let mut core = Box::new(SchedCore {
        sched_sp: std::ptr::null_mut(),
        current: usize::MAX,
        tasks: Vec::with_capacity(n),
        ready: BinaryHeap::with_capacity(n),
        seq: 0,
        live: n,
        events: 0,
        max_ready: n,
    });
    let core_ptr: *mut SchedCore = &mut *core;
    for (id, closure) in closures.into_iter().enumerate() {
        let stack = Stack::alloc(stack_bytes);
        let mut task = Box::new(Task {
            sp: std::ptr::null_mut(),
            stack,
            closure: Some(closure),
            state: TaskState::Ready,
            block_clock: VTime::ZERO,
            ready_key: (VTime::ZERO, id as u64),
            cancelled: false,
            panic: None,
            core: core_ptr,
        });
        // SAFETY: the stack is freshly allocated and owned by `task`; the
        // crafted frame makes the first switch land in `trampoline` with
        // the task pointer in a callee-saved register. The Box gives the
        // task a stable address for the lifetime of the run.
        task.sp = unsafe { ctx::craft_stack(task.stack.top(), &mut *task) };
        task.stack.arm_canary();
        core.tasks.push(task);
        core.ready.push(Reverse(((VTime::ZERO, id as u64), id)));
    }
    core.seq = n as u64;

    ACTIVE.with(|a| a.set(core_ptr));
    // SAFETY: core_ptr outlives the loop; the loop leaves every task
    // Finished before returning or unwinding.
    let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { run_loop(core_ptr) }));
    ACTIVE.with(|a| a.set(std::ptr::null_mut()));
    match outcome {
        Ok(()) => SchedStats {
            tasks: n,
            events: core.events,
            max_ready: core.max_ready,
        },
        Err(p) => resume_unwind(p),
    }
}

/// # Safety
/// `core` must point at the live `SchedCore` of this thread's run; no
/// reference into it may be held across `resume`.
unsafe fn run_loop(core: *mut SchedCore) {
    loop {
        let popped = (*core).ready.pop();
        let Some(Reverse((key, id))) = popped else {
            if (*core).live == 0 {
                return;
            }
            let report = describe_blocked(core);
            cancel_all(core);
            panic!(
                "discrete-event scheduler deadlock: no runnable task, {} still blocked \
                 (deadlock in the simulated program?): {report}",
                report_count(core)
            );
        };
        {
            let c = &mut *core;
            let t = &mut *c.tasks[id];
            // Lazily-deleted entry: the task re-blocked, finished, or had
            // its key lowered since this entry was pushed.
            if t.state != TaskState::Ready || t.ready_key != key {
                continue;
            }
            t.state = TaskState::Running;
            c.current = id;
            c.events += 1;
        }
        resume(core, id);
        let c = &mut *core;
        c.current = usize::MAX;
        if c.tasks[id].state == TaskState::Finished {
            c.live -= 1;
            if let Some(p) = c.tasks[id].panic.take() {
                cancel_all(core);
                resume_unwind(p);
            }
        }
    }
}

/// Unwind every unfinished task so stacks, destructors, and borrows are
/// cleaned up before the scheduler frame goes away.
///
/// # Safety
/// As for `run_loop`.
unsafe fn cancel_all(core: *mut SchedCore) {
    let n = {
        let c = &mut *core;
        for t in c.tasks.iter_mut() {
            t.cancelled = true;
        }
        c.tasks.len()
    };
    loop {
        let next = {
            let c = &*core;
            (0..n).find(|&i| c.tasks[i].state != TaskState::Finished)
        };
        let Some(id) = next else {
            break;
        };
        {
            let c = &mut *core;
            c.tasks[id].state = TaskState::Running;
            c.current = id;
        }
        resume(core, id);
        (*core).current = usize::MAX;
        // A cancelled task either unwound (Finished) or ran on and blocked
        // again before noticing; the loop resumes it until it dies.
    }
    (*core).live = 0;
}

/// # Safety
/// As for `run_loop`; `id` must be a valid, unfinished task.
unsafe fn resume(core: *mut SchedCore, id: usize) {
    let (task, sched_sp_slot) = {
        let c = &mut *core;
        let task: *mut Task = &mut *c.tasks[id];
        (task, &raw mut c.sched_sp)
    };
    ctx::switch(sched_sp_slot, (*task).sp);
    if !(*task).stack.canary_ok() {
        eprintln!(
            "fatal: simulation task {id} overflowed its {}-byte stack \
             (raise SimConfig::task_stack_bytes)",
            (*task).stack.size()
        );
        std::process::abort();
    }
}

/// # Safety
/// Must be called on a task's coroutine stack with `core.current == id`.
unsafe fn switch_to_scheduler(core: *mut SchedCore, id: usize) {
    let (sp_slot, sched_sp) = {
        let c = &mut *core;
        let sp_slot: *mut *mut u8 = &raw mut c.tasks[id].sp;
        (sp_slot, c.sched_sp)
    };
    ctx::switch(sp_slot, sched_sp);
}

unsafe fn describe_blocked(core: *mut SchedCore) -> String {
    let mut parts = Vec::new();
    let c = &*core;
    for (id, t) in c.tasks.iter().enumerate() {
        if let TaskState::Blocked(reason) = t.state {
            if parts.len() == 8 {
                parts.push("…".to_string());
                break;
            }
            parts.push(format!("task {id} in {reason} @ {:?}", t.block_clock));
        }
    }
    parts.join(", ")
}

unsafe fn report_count(core: *mut SchedCore) -> usize {
    let c = &*core;
    c.tasks
        .iter()
        .filter(|t| matches!(t.state, TaskState::Blocked(_)))
        .count()
}

/// Coroutine entry point: runs the task closure under `catch_unwind`, then
/// parks forever on the scheduler (a finished task is never resumed except
/// by `cancel_all`, which it answers by switching straight back).
unsafe extern "C" fn task_entry(task: *mut Task) -> ! {
    let (core, closure) = {
        let t = &mut *task;
        (t.core, t.closure.take().expect("coroutine entered twice"))
    };
    let outcome = catch_unwind(AssertUnwindSafe(closure));
    {
        let t = &mut *task;
        if let Err(p) = outcome {
            if !p.is::<CancelToken>() {
                t.panic = Some(p);
            }
        }
        t.state = TaskState::Finished;
    }
    loop {
        let sp_slot: *mut *mut u8 = &raw mut (*task).sp;
        ctx::switch(sp_slot, (*core).sched_sp);
    }
}

struct Stack {
    base: *mut u8,
    layout: std::alloc::Layout,
}

impl Stack {
    /// Allocate without initializing: untouched pages stay virtual, so
    /// 8k ranks × 512 KiB stacks cost resident memory only where used.
    fn alloc(bytes: usize) -> Stack {
        let layout = std::alloc::Layout::from_size_align(bytes, 16).expect("stack layout");
        // SAFETY: non-zero size, valid alignment.
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "coroutine stack allocation failed");
        Stack { base, layout }
    }

    fn size(&self) -> usize {
        self.layout.size()
    }

    fn top(&self) -> *mut u8 {
        // SAFETY: one-past-the-end of the allocation.
        unsafe { self.base.add(self.layout.size()) }
    }

    fn arm_canary(&self) {
        // SAFETY: base is 16-aligned and the stack is at least MIN_STACK_BYTES.
        unsafe { (self.base as *mut u64).write(CANARY) }
    }

    fn canary_ok(&self) -> bool {
        // SAFETY: as in `arm_canary`.
        unsafe { (self.base as *const u64).read() == CANARY }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        // SAFETY: allocated in `alloc` with the same layout.
        unsafe { std::alloc::dealloc(self.base, self.layout) }
    }
}

/// The architecture-specific context switch: saves the callee-saved
/// register frame on the current stack, stores the stack pointer through
/// the first argument, installs the second argument as the new stack
/// pointer, restores its frame, and returns on the new stack.
#[cfg(target_arch = "x86_64")]
mod ctx {
    use super::Task;

    /// # Safety
    /// `save_slot` must be writable; `new_sp` must be a stack pointer
    /// previously produced by this function or by `craft_stack`.
    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn switch(_save_slot: *mut *mut u8, _new_sp: *mut u8) {
        // System V x86-64: rdi = save_slot, rsi = new_sp. Frame layout,
        // low to high: r15 r14 r13 r12 rbx rbp [return address].
        core::arch::naked_asm!(
            "push rbp",
            "push rbx",
            "push r12",
            "push r13",
            "push r14",
            "push r15",
            "mov [rdi], rsp",
            "mov rsp, rsi",
            "pop r15",
            "pop r14",
            "pop r13",
            "pop r12",
            "pop rbx",
            "pop rbp",
            "ret",
        )
    }

    /// First activation target: moves the task pointer (planted in r12 by
    /// `craft_stack`) into the argument register and calls `task_entry`.
    /// Entered via `ret` with rsp ≡ 0 (mod 16), so the `call` leaves the
    /// stack with standard System V alignment.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        core::arch::naked_asm!(
            "mov rdi, r12",
            "call {entry}",
            "ud2",
            entry = sym super::task_entry,
        )
    }

    /// Build the initial frame `switch` will restore on first resume.
    ///
    /// # Safety
    /// `top` must be one-past-the-end of a stack at least
    /// [`super::MIN_STACK_BYTES`] long; `task` must outlive the coroutine.
    pub(super) unsafe fn craft_stack(top: *mut u8, task: *mut Task) -> *mut u8 {
        let top16 = (top as usize) & !15;
        // ret target at ≡ 8 (mod 16): after the 6 pops and the ret the
        // trampoline starts with rsp = slot+8 ≡ 0 (mod 16).
        let ret_slot = (top16 - 8) as *mut usize;
        ret_slot.write(trampoline as unsafe extern "C" fn() as usize);
        let frame = ret_slot.sub(6);
        frame.write(0); // r15
        frame.add(1).write(0); // r14
        frame.add(2).write(0); // r13
        frame.add(3).write(task as usize); // r12: task pointer
        frame.add(4).write(0); // rbx
        frame.add(5).write(0); // rbp
        frame as *mut u8
    }
}

#[cfg(target_arch = "aarch64")]
mod ctx {
    use super::Task;

    /// # Safety
    /// As for the x86-64 variant.
    #[unsafe(naked)]
    pub(super) unsafe extern "C" fn switch(_save_slot: *mut *mut u8, _new_sp: *mut u8) {
        // AAPCS64: x0 = save_slot, x1 = new_sp. 160-byte frame: x19..x28,
        // fp, lr, d8..d15; `ret` returns through the restored x30.
        core::arch::naked_asm!(
            "sub sp, sp, #160",
            "stp x19, x20, [sp]",
            "stp x21, x22, [sp, #16]",
            "stp x23, x24, [sp, #32]",
            "stp x25, x26, [sp, #48]",
            "stp x27, x28, [sp, #64]",
            "stp x29, x30, [sp, #80]",
            "stp d8, d9, [sp, #96]",
            "stp d10, d11, [sp, #112]",
            "stp d12, d13, [sp, #128]",
            "stp d14, d15, [sp, #144]",
            "mov x2, sp",
            "str x2, [x0]",
            "mov sp, x1",
            "ldp x21, x22, [sp, #16]",
            "ldp x23, x24, [sp, #32]",
            "ldp x25, x26, [sp, #48]",
            "ldp x27, x28, [sp, #64]",
            "ldp x29, x30, [sp, #80]",
            "ldp d8, d9, [sp, #96]",
            "ldp d10, d11, [sp, #112]",
            "ldp d12, d13, [sp, #128]",
            "ldp d14, d15, [sp, #144]",
            "ldp x19, x20, [sp], #160",
            "ret",
        )
    }

    /// First activation target: task pointer arrives in x19.
    #[unsafe(naked)]
    unsafe extern "C" fn trampoline() {
        core::arch::naked_asm!(
            "mov x0, x19",
            "bl {entry}",
            "brk #0x1",
            entry = sym super::task_entry,
        )
    }

    /// # Safety
    /// As for the x86-64 variant.
    pub(super) unsafe fn craft_stack(top: *mut u8, task: *mut Task) -> *mut u8 {
        let top16 = (top as usize) & !15;
        let frame = (top16 - 160) as *mut usize;
        for i in 0..20 {
            frame.add(i).write(0);
        }
        frame.write(task as usize); // x19: task pointer
        frame
            .add(11)
            .write(trampoline as unsafe extern "C" fn() as usize); // x30: return target
        frame as *mut u8
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod ctx {
    use super::Task;

    /// # Safety
    /// Never callable: `run_tasks` rejects unsupported targets first.
    pub(super) unsafe extern "C" fn switch(_save_slot: *mut *mut u8, _new_sp: *mut u8) {
        unreachable!("event backend not implemented for this target")
    }

    /// # Safety
    /// As for `switch`.
    pub(super) unsafe fn craft_stack(_top: *mut u8, _task: *mut Task) -> *mut u8 {
        unreachable!("event backend not implemented for this target")
    }
}

/// A wait/notify primitive that blocks cooperatively inside a simulation
/// task and falls back to an OS condvar on plain threads — the bridge that
/// lets one blocking API (mailboxes, rendezvous handshakes, collective
/// slots) serve both backends unchanged.
#[derive(Debug, Default)]
pub struct WaitSet {
    cv: Condvar,
    waiters: Mutex<Vec<TaskId>>,
}

impl WaitSet {
    /// An empty wait set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Release `guard`, wait for [`WaitSet::notify_all`], and hand back a
    /// freshly acquired guard on `mutex` (which must own `guard`).
    ///
    /// Inside a task this suspends the coroutine with resume bound `clock`
    /// and the flag is always `false` (deadlock detection is structural).
    /// On a plain thread it waits on the condvar and the flag is `true`
    /// iff `deadline` passed — the caller's real-time deadlock budget.
    pub fn wait<'m, T>(
        &self,
        mutex: &'m Mutex<T>,
        guard: MutexGuard<'m, T>,
        deadline: Instant,
        clock: VTime,
        reason: &'static str,
    ) -> (MutexGuard<'m, T>, bool) {
        if let Some(id) = current() {
            self.waiters.lock().push(id);
            drop(guard);
            block(clock, reason);
            (mutex.lock(), false)
        } else {
            let mut guard = guard;
            let timed_out = self.cv.wait_until(&mut guard, deadline).timed_out();
            (guard, timed_out)
        }
    }

    /// Condvar-only timed wait, for the thread backend's wall-clock grace
    /// window. Returns `true` on timeout. Must not be called from a task.
    pub fn wait_for_os<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
        debug_assert!(
            current().is_none(),
            "wait_for_os called from a simulation task"
        );
        self.cv.wait_for(guard, dur).timed_out()
    }

    /// Wake every registered waiter: queued tasks re-enter the scheduler
    /// no earlier than virtual time `at`; OS threads get a condvar
    /// broadcast.
    pub fn notify_all(&self, at: VTime) {
        let mut w = self.waiters.lock();
        for id in w.drain(..) {
            wake(id, at);
        }
        drop(w);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn boxed<'a>(f: impl FnOnce() + 'a) -> Box<dyn FnOnce() + 'a> {
        Box::new(f)
    }

    #[test]
    fn tasks_run_in_virtual_clock_order() {
        let log = Mutex::new(Vec::new());
        let stats = run_tasks(
            MIN_STACK_BYTES,
            vec![
                boxed(|| {
                    log.lock().push("a0");
                    yield_at(VTime(100));
                    log.lock().push("a1");
                }),
                boxed(|| {
                    log.lock().push("b0");
                    yield_at(VTime(50));
                    log.lock().push("b1");
                }),
            ],
        );
        assert_eq!(log.into_inner(), vec!["a0", "b0", "b1", "a1"]);
        assert_eq!(stats.tasks, 2);
        assert_eq!(stats.events, 4);
        assert!(stats.max_ready >= 2);
    }

    #[test]
    fn equal_clocks_run_in_spawn_order() {
        let log = Mutex::new(Vec::new());
        run_tasks(
            MIN_STACK_BYTES,
            (0..8)
                .map(|i| {
                    let log = &log;
                    boxed(move || log.lock().push(i))
                })
                .collect(),
        );
        assert_eq!(log.into_inner(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn waitset_hands_off_between_tasks() {
        let slot: Mutex<Option<u32>> = Mutex::new(None);
        let ws = WaitSet::new();
        let got = Mutex::new(None);
        run_tasks(
            MIN_STACK_BYTES,
            vec![
                boxed(|| {
                    let mut s = slot.lock();
                    while s.is_none() {
                        let deadline = Instant::now() + Duration::from_secs(5);
                        let (g, timed_out) = ws.wait(&slot, s, deadline, VTime::ZERO, "test-recv");
                        assert!(!timed_out);
                        s = g;
                    }
                    *got.lock() = *s;
                }),
                boxed(|| {
                    *slot.lock() = Some(42);
                    ws.notify_all(VTime(7));
                }),
            ],
        );
        assert_eq!(got.into_inner(), Some(42));
    }

    #[test]
    fn wake_bound_is_wakers_clock() {
        // The woken task must not run before a same-clock task queued
        // earlier: its resume bound is max(block clock, waker clock).
        let log = Mutex::new(Vec::new());
        let ws = WaitSet::new();
        let flag = Mutex::new(false);
        run_tasks(
            MIN_STACK_BYTES,
            vec![
                boxed(|| {
                    let mut f = flag.lock();
                    while !*f {
                        let deadline = Instant::now() + Duration::from_secs(5);
                        f = ws.wait(&flag, f, deadline, VTime::ZERO, "test-wait").0;
                    }
                    drop(f);
                    log.lock().push("waiter");
                }),
                boxed(|| {
                    *flag.lock() = true;
                    ws.notify_all(VTime(200));
                    yield_at(VTime(100));
                    log.lock().push("mid");
                }),
            ],
        );
        assert_eq!(log.into_inner(), vec!["mid", "waiter"]);
    }

    #[test]
    fn panic_in_one_task_cancels_and_unwinds_the_rest() {
        let dropped = AtomicBool::new(false);
        struct Guard<'a>(&'a AtomicBool);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let ws = WaitSet::new();
        let lock = Mutex::new(());
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(
                MIN_STACK_BYTES,
                vec![
                    boxed(|| {
                        let _g = Guard(&dropped);
                        let mut l = lock.lock();
                        loop {
                            let deadline = Instant::now() + Duration::from_secs(5);
                            l = ws.wait(&lock, l, deadline, VTime::ZERO, "test-park").0;
                        }
                    }),
                    boxed(|| panic!("kaboom")),
                ],
            )
        }))
        .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "kaboom");
        assert!(
            dropped.load(Ordering::SeqCst),
            "blocked task must be unwound"
        );
    }

    #[test]
    fn structural_deadlock_is_reported() {
        let ws = WaitSet::new();
        let lock = Mutex::new(());
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(
                MIN_STACK_BYTES,
                vec![boxed(|| {
                    let mut l = lock.lock();
                    loop {
                        let deadline = Instant::now() + Duration::from_secs(5);
                        l = ws.wait(&lock, l, deadline, VTime(9), "test-recv").0;
                    }
                })],
            )
        }))
        .expect_err("deadlock must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "got: {msg}");
        assert!(msg.contains("test-recv"), "got: {msg}");
    }

    #[test]
    fn borrows_of_caller_locals_are_sound() {
        let mut results = vec![0u64; 16];
        {
            let cells: Vec<Mutex<&mut u64>> = results.iter_mut().map(Mutex::new).collect();
            run_tasks(
                MIN_STACK_BYTES,
                (0..16)
                    .map(|i| {
                        let cells = &cells;
                        boxed(move || {
                            yield_at(VTime((16 - i) as u64));
                            **cells[i].lock() = i as u64 + 1;
                        })
                    })
                    .collect(),
            );
        }
        assert_eq!(results, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn backend_labels_round_trip() {
        for b in [SimBackend::Thread, SimBackend::Event] {
            assert_eq!(b.label().parse::<SimBackend>().unwrap(), b);
        }
        assert!("bogus".parse::<SimBackend>().is_err());
        assert_eq!(SimBackend::default(), SimBackend::Event);
        if SimBackend::event_supported() {
            assert_eq!(SimBackend::Event.effective(), SimBackend::Event);
        } else {
            assert_eq!(SimBackend::Event.effective(), SimBackend::Thread);
        }
    }

    #[test]
    fn thousands_of_tasks_fit_in_one_thread() {
        let n = 4096;
        let counter = Mutex::new(0u64);
        let stats = run_tasks(
            MIN_STACK_BYTES,
            (0..n)
                .map(|i| {
                    let counter = &counter;
                    boxed(move || {
                        yield_at(VTime(i as u64 % 97));
                        *counter.lock() += 1;
                    })
                })
                .collect(),
        );
        assert_eq!(counter.into_inner(), n as u64);
        assert_eq!(stats.tasks, n);
        assert_eq!(stats.events, 2 * n as u64);
    }
}
