//! # ats-runtime
//!
//! The execution substrate shared by all ATS-RS simulators.
//!
//! The APART Test Suite (ATS) paper constructs synthetic parallel programs
//! whose *timing structure* is the payload: a `late_sender` program is only a
//! valid test case if the even ranks really do post their sends late by the
//! programmed amount. The original C prototype obtained this behaviour with a
//! calibrated busy loop on a real machine; the calibration is explicitly
//! described as approximate ("up to a certain degree ... not guaranteed to be
//! stable especially under heavy work load", paper §3.1.1).
//!
//! This crate provides the two ingredients that let ATS-RS strengthen that
//! guarantee while keeping the paper's approach available:
//!
//! * **Virtual time** ([`VTime`], [`VDur`]): every simulated participant
//!   (MPI rank, OpenMP thread) carries a virtual clock measured in integer
//!   nanoseconds. Work advances the clock exactly; communication advances it
//!   according to a [`MachineModel`] (a LogGP-style cost model). All
//!   timestamps are pure functions of the program and its parameters, so
//!   every experiment is bit-reproducible.
//! * **Calibrated real work** ([`work::WorkEngine`] in `Real` mode): a
//!   faithful port of the paper's `do_work` busy loop — random reads and
//!   writes over two large arrays, driven by a lock-free splittable RNG
//!   ([`rng::SplitMix64`]), with an installation-time calibration phase.
//!
//! Higher layers (the MPI and OpenMP substrates) consume both: virtual mode
//! for correctness experiments and unit tests, real mode for wall-clock
//! benchmarking of the suite itself.

//! A third ingredient, the **discrete-event scheduler** ([`sched`]), turns
//! each simulated participant into a cheap coroutine driven from a
//! virtual-clock event queue, so one process can host 10k+ ranks; the
//! per-rank OS-thread backend remains available behind [`SimBackend`] as a
//! differential-testing oracle.

pub mod model;
pub mod rng;
pub mod sched;
pub mod time;
pub mod work;

pub use model::MachineModel;
pub use rng::SplitMix64;
pub use sched::{SchedStats, SimBackend};
pub use time::{VDur, VTime};
pub use work::{WorkEngine, WorkMode};
