//! Virtual time: integer-nanosecond instants and durations.
//!
//! All simulated clocks in ATS-RS use integer nanoseconds rather than `f64`
//! seconds so that clock arithmetic is associative and platform-independent;
//! reproducibility of timestamps is a correctness property of a test suite
//! whose entire purpose is producing *known* timing patterns.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A virtual instant, in nanoseconds since the start of the simulated run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct VTime(pub u64);

/// A virtual duration, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct VDur(pub u64);

impl VTime {
    /// The origin of virtual time.
    pub const ZERO: VTime = VTime(0);

    /// Construct from (possibly fractional) seconds. Negative values clamp
    /// to zero; the suite's work amounts are non-negative by construction.
    pub fn from_secs(s: f64) -> Self {
        VTime(secs_to_nanos(s))
    }

    /// This instant as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Nanoseconds since the origin.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The elapsed duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: VTime) -> VDur {
        VDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: VTime) -> VTime {
        VTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: VTime) -> VTime {
        VTime(self.0.min(other.0))
    }
}

impl VDur {
    /// The zero duration.
    pub const ZERO: VDur = VDur(0);

    /// Construct from (possibly fractional) seconds, clamping negatives.
    pub fn from_secs(s: f64) -> Self {
        VDur(secs_to_nanos(s))
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        VDur(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        VDur(ms * 1_000_000)
    }

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        VDur(ns)
    }

    /// This duration as fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: VDur) -> VDur {
        VDur(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: VDur) -> VDur {
        VDur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: VDur) -> VDur {
        VDur(self.0.min(other.0))
    }

    /// True if this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if s <= 0.0 || !s.is_finite() {
        0
    } else {
        // Round to the nearest nanosecond so e.g. 0.1s is exact.
        (s * 1e9).round() as u64
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    fn add(self, d: VDur) -> VTime {
        VTime(self.0 + d.0)
    }
}

impl AddAssign<VDur> for VTime {
    fn add_assign(&mut self, d: VDur) {
        self.0 += d.0;
    }
}

impl Sub<VDur> for VTime {
    type Output = VTime;
    fn sub(self, d: VDur) -> VTime {
        VTime(self.0.saturating_sub(d.0))
    }
}

impl Sub<VTime> for VTime {
    type Output = VDur;
    fn sub(self, other: VTime) -> VDur {
        VDur(self.0.saturating_sub(other.0))
    }
}

impl Add for VDur {
    type Output = VDur;
    fn add(self, other: VDur) -> VDur {
        VDur(self.0 + other.0)
    }
}

impl AddAssign for VDur {
    fn add_assign(&mut self, other: VDur) {
        self.0 += other.0;
    }
}

impl Sub for VDur {
    type Output = VDur;
    fn sub(self, other: VDur) -> VDur {
        VDur(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for VDur {
    fn sub_assign(&mut self, other: VDur) {
        self.0 = self.0.saturating_sub(other.0);
    }
}

impl Mul<u64> for VDur {
    type Output = VDur;
    fn mul(self, k: u64) -> VDur {
        VDur(self.0 * k)
    }
}

impl Mul<f64> for VDur {
    type Output = VDur;
    fn mul(self, k: f64) -> VDur {
        VDur::from_secs(self.as_secs() * k)
    }
}

impl Div<u64> for VDur {
    type Output = VDur;
    fn div(self, k: u64) -> VDur {
        VDur(self.0 / k)
    }
}

impl Sum for VDur {
    fn sum<I: Iterator<Item = VDur>>(iter: I) -> VDur {
        iter.fold(VDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration() {
        let t = VTime::from_secs(1.0);
        assert_eq!(t + VDur::from_millis(500), VTime::from_secs(1.5));
    }

    #[test]
    fn time_difference_saturates() {
        let a = VTime::from_secs(1.0);
        let b = VTime::from_secs(2.0);
        assert_eq!(b - a, VDur::from_secs(1.0));
        assert_eq!(a - b, VDur::ZERO);
        assert_eq!(a.since(b), VDur::ZERO);
    }

    #[test]
    fn from_secs_rounds_to_nanosecond() {
        assert_eq!(VDur::from_secs(0.1).as_nanos(), 100_000_000);
        assert_eq!(VDur::from_secs(1e-9).as_nanos(), 1);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(VDur::from_secs(-1.0), VDur::ZERO);
        assert_eq!(VDur::from_secs(f64::NAN), VDur::ZERO);
        assert_eq!(VTime::from_secs(f64::NEG_INFINITY), VTime::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = VDur::from_millis(10);
        assert_eq!(d * 3u64, VDur::from_millis(30));
        assert_eq!(d * 0.5f64, VDur::from_millis(5));
        assert_eq!(d / 2, VDur::from_millis(5));
    }

    #[test]
    fn duration_sum() {
        let total: VDur = (1..=4).map(VDur::from_millis).sum();
        assert_eq!(total, VDur::from_millis(10));
    }

    #[test]
    fn ordering_and_max() {
        let a = VTime::from_secs(1.0);
        let b = VTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(VDur::from_nanos(3).max(VDur::from_nanos(5)), VDur(5));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", VDur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", VDur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", VDur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", VDur::from_secs(1.5)), "1.500s");
    }
}
