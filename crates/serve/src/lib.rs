//! `ats-serve`: a multi-tenant campaign service over the suite's
//! [`Session`](ats_harness::Session) API.
//!
//! The offline toolchain runs scenarios, analyzes traces and caches the
//! artifacts; this crate puts that pipeline behind a small, stable,
//! versioned HTTP surface so many clients can share one warm artifact
//! store:
//!
//! - `POST /v1/analyze` — one scenario spec (text or JSON form) in, the
//!   frozen `ats-report/1` report bytes out, read-through against the
//!   content-addressed store (`x-ats-cache: hit|miss`, `x-ats-key`).
//! - `POST /v1/campaign` — a JSONL campaign in, `ats-serve-row/1` rows
//!   streamed back as each pool batch completes.
//! - `GET /v1/artifacts/{key}/{file}` — raw stored artifacts
//!   (`report.json`, `trace.atsb`).
//! - `GET /metrics` — Prometheus text for the shared session registry.
//!
//! Robustness is part of the API: admission is bounded (connections past
//! [`ServeConfig::max_conns`] are shed with an explicit `429`), every
//! tenant has an independent in-flight budget, socket timeouts bound
//! slow clients, and shutdown drains admitted requests before closing.
//! The wire documents are canonical JSON, so every response is
//! byte-comparable with the offline artifacts — `serve_bench` gates on
//! exactly that.

pub mod api;
pub mod client;
pub mod http;
mod poll;
pub mod server;
pub mod tenant;
pub mod wire;

pub use api::AppState;
pub use client::{AnalyzeResult, Client, Response};
pub use server::{start, ServeConfig, ServerHandle};
pub use tenant::{TenantGov, TenantPermit, DEFAULT_TENANT};
pub use wire::{RowDoc, ERROR_SCHEMA, KEY_SCHEMA, ROW_SCHEMA, SERVE_SCHEMA};
