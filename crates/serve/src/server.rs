//! The connection engine: admission, readiness, workers, drain.
//!
//! Threads on Linux:
//!
//! - **acceptor** — blocking `accept`. Over [`ServeConfig::max_conns`]
//!   live connections it sheds the newcomer with an immediate `429` and
//!   closes — explicit backpressure instead of an unbounded queue.
//!   Admitted sockets get read/write timeouts and are registered with the
//!   poller one-shot.
//! - **poll** — `epoll_wait` loop. A readable connection is *taken out*
//!   of the shared table and pushed onto the bounded ready queue; the
//!   one-shot registration guarantees no second event can arrive while a
//!   worker owns the socket.
//! - **workers** — pop a ready connection, read one request (socket
//!   timeouts bound slow clients), dispatch through [`api::handle`],
//!   then either continue with pipelined bytes already buffered or
//!   re-arm the socket and put it back in the table.
//!
//! Shutdown drains gracefully: the flag flips, the acceptor is unblocked
//! by a self-connect, the poll thread by a wake pipe, and workers finish
//! every request already on the ready queue before exiting; idle
//! keep-alive connections are then closed.
//!
//! Non-Linux targets fall back to one thread per connection with the
//! same admission, timeout and drain behavior.

use crate::api::{self, AppState};
use crate::http::{self, HttpError, Limits};
use crate::tenant::TenantGov;
use ats_core::Error;
use ats_harness::Session;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
use crate::poll::Poller;
#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

/// Token reserved for the shutdown wake channel.
#[cfg(target_os = "linux")]
const WAKE_TOKEN: u64 = u64::MAX;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Live-connection ceiling; newcomers past it are shed with 429.
    pub max_conns: usize,
    /// Request worker threads (`0` = auto).
    pub workers: usize,
    /// Per-tenant in-flight request cap.
    pub tenant_inflight: usize,
    /// Socket read/write timeout bounding one request exchange.
    pub request_timeout: Duration,
    /// HTTP framing limits.
    pub limits: Limits,
    /// Scenarios per pool batch when streaming campaigns.
    pub campaign_chunk: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_conns: 2048,
            workers: 0,
            tenant_inflight: 256,
            request_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            campaign_chunk: 32,
        }
    }
}

fn default_workers() -> usize {
    thread::available_parallelism().map_or(4, |n| n.get() * 4).clamp(4, 64)
}

/// One admitted connection and its buffered pipeline bytes.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    leftover: Vec<u8>,
}

#[derive(Debug)]
struct Inner {
    state: AppState,
    limits: Limits,
    max_conns: usize,
    shutdown: AtomicBool,
    /// Live (admitted, not yet closed) connections.
    live: AtomicUsize,
    /// Connections currently on the ready queue or inside a worker.
    inflight: AtomicUsize,
    /// Idle connections parked in the poller, keyed by fd token.
    conns: Mutex<HashMap<u64, Conn>>,
    ready: Mutex<VecDeque<Conn>>,
    ready_cv: Condvar,
    #[cfg(target_os = "linux")]
    poller: Poller,
    #[cfg(target_os = "linux")]
    waker: Mutex<std::os::unix::net::UnixStream>,
}

impl Inner {
    fn obs(&self) -> Option<&ats_obs::Handle> {
        self.state.session.obs()
    }

    fn close_conn(&self, conn: Conn) {
        drop(conn);
        let live = self.live.fetch_sub(1, Ordering::SeqCst) - 1;
        if let Some(h) = self.obs() {
            h.serve.connections.set(live as u64);
        }
    }
}

/// A running service; keep it alive for as long as the server should
/// accept requests, then call [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session requests execute under.
    pub fn session(&self) -> &Session {
        &self.inner.state.session
    }

    /// Live connections right now.
    pub fn live_connections(&self) -> usize {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, finish every request already
    /// admitted to the ready queue, close idle keep-alive connections,
    /// join all service threads.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept().
        let _ = TcpStream::connect(self.addr);
        // Unblock the poll thread's epoll_wait().
        #[cfg(target_os = "linux")]
        {
            use io::Write;
            let _ = self.inner.waker.lock().unwrap().write_all(b"w");
        }
        self.inner.ready_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Whatever is still parked was idle; close it.
        let parked: Vec<Conn> = self.inner.conns.lock().unwrap().drain().map(|(_, c)| c).collect();
        for conn in parked {
            self.inner.close_conn(conn);
        }
    }
}

/// Bind, spawn the service threads, return the handle.
pub fn start(session: Session, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let gov = TenantGov::new(config.tenant_inflight);
    let state = AppState {
        session,
        gov,
        campaign_chunk: config.campaign_chunk,
    };
    let workers = if config.workers == 0 {
        default_workers()
    } else {
        config.workers
    };
    let timeout = config.request_timeout;

    #[cfg(target_os = "linux")]
    {
        let poller = Poller::new()?;
        let (wake_r, wake_w) = std::os::unix::net::UnixStream::pair()?;
        wake_r.set_nonblocking(true)?;
        poller.add_level(wake_r.as_raw_fd(), WAKE_TOKEN)?;
        let inner = Arc::new(Inner {
            state,
            limits: config.limits,
            max_conns: config.max_conns.max(1),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            poller,
            waker: Mutex::new(wake_w),
        });
        let mut threads = Vec::with_capacity(workers + 2);
        let p = Arc::clone(&inner);
        threads.push(
            thread::Builder::new()
                .name("ats-serve-poll".into())
                .spawn(move || poll_loop(&p, wake_r))?,
        );
        for i in 0..workers {
            let w = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name(format!("ats-serve-worker-{i}"))
                    .spawn(move || worker_loop(&w))?,
            );
        }
        let a = Arc::clone(&inner);
        threads.push(
            thread::Builder::new()
                .name("ats-serve-accept".into())
                .spawn(move || accept_loop(&a, &listener, timeout))?,
        );
        Ok(ServerHandle {
            addr,
            inner,
            threads,
        })
    }

    #[cfg(not(target_os = "linux"))]
    {
        let _ = workers;
        let inner = Arc::new(Inner {
            state,
            limits: config.limits,
            max_conns: config.max_conns.max(1),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
        });
        let a = Arc::clone(&inner);
        let threads = vec![thread::Builder::new()
            .name("ats-serve-accept".into())
            .spawn(move || accept_blocking(&a, &listener, timeout))?];
        Ok(ServerHandle {
            addr,
            inner,
            threads,
        })
    }
}

/// Answer a shed connection with 429 and close it (short write timeout —
/// a stalled peer must not stall admission).
fn shed(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let err = Error::request("server is at its connection capacity");
    let body = crate::wire::error_body(&err);
    let _ = http::write_response(
        &mut stream,
        429,
        "application/json",
        &[],
        body.as_bytes(),
        false,
    );
    if let Some(h) = inner.obs() {
        h.serve.shed.inc();
    }
}

fn admit(inner: &Inner, stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let live = inner.live.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(h) = inner.obs() {
        h.serve.connections.set(live as u64);
    }
    Ok(())
}

#[cfg(target_os = "linux")]
fn accept_loop(inner: &Inner, listener: &TcpListener, timeout: Duration) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if inner.live.load(Ordering::SeqCst) >= inner.max_conns {
            shed(inner, stream);
            continue;
        }
        if admit(inner, &stream, timeout).is_err() {
            continue;
        }
        let token = stream.as_raw_fd() as u64;
        inner.conns.lock().unwrap().insert(
            token,
            Conn {
                stream,
                leftover: Vec::new(),
            },
        );
        // Register after inserting so an instantly-readable socket finds
        // its table entry; the fd is valid for EPOLL_CTL_ADD because the
        // table now owns the stream.
        let fd = token as i32;
        if inner.poller.add_oneshot(fd, token).is_err() {
            if let Some(conn) = inner.conns.lock().unwrap().remove(&token) {
                inner.close_conn(conn);
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn poll_loop(inner: &Inner, _wake_keepalive: std::os::unix::net::UnixStream) {
    let mut events = Vec::new();
    loop {
        events.clear();
        if inner.poller.wait(&mut events, -1).is_err() {
            return;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            // Workers drain what is already queued; unclaimed events are
            // idle connections, closed by ServerHandle::shutdown.
            inner.ready_cv.notify_all();
            return;
        }
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            let conn = inner.conns.lock().unwrap().remove(&ev.token);
            let Some(conn) = conn else { continue };
            let inflight = inner.inflight.fetch_add(1, Ordering::SeqCst) + 1;
            if let Some(h) = inner.obs() {
                h.serve.inflight_max.set_max(inflight as u64);
            }
            inner.ready.lock().unwrap().push_back(conn);
            inner.ready_cv.notify_one();
        }
    }
}

#[cfg(target_os = "linux")]
fn worker_loop(inner: &Inner) {
    loop {
        let conn = {
            let mut q = inner.ready.lock().unwrap();
            loop {
                if let Some(c) = q.pop_front() {
                    break Some(c);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = inner.ready_cv.wait(q).unwrap();
            }
        };
        let Some(conn) = conn else { return };
        drive(inner, conn);
        inner.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Serve requests on one ready connection until its buffered bytes are
/// exhausted, then park it back in the poller (or close it).
#[cfg(target_os = "linux")]
fn drive(inner: &Inner, mut conn: Conn) {
    loop {
        match serve_one(inner, &mut conn) {
            Outcome::Close => return inner.close_conn(conn),
            Outcome::Continue => continue,
            Outcome::Park => return park(inner, conn),
        }
    }
}

#[cfg(target_os = "linux")]
fn park(inner: &Inner, conn: Conn) {
    let fd = conn.stream.as_raw_fd();
    let token = fd as u64;
    inner.conns.lock().unwrap().insert(token, conn);
    if inner.poller.rearm(fd, token).is_err() {
        if let Some(conn) = inner.conns.lock().unwrap().remove(&token) {
            inner.close_conn(conn);
        }
    }
}

enum Outcome {
    /// Another full request head is already buffered — serve it now.
    Continue,
    /// Wait for more bytes (re-arm in the poller on Linux).
    Park,
    Close,
}

/// Read and answer exactly one request (or one framing error) on `conn`.
fn serve_one(inner: &Inner, conn: &mut Conn) -> Outcome {
    match http::read_request(&mut conn.stream, &mut conn.leftover, &inner.limits) {
        Ok(req) => {
            if let Some(h) = inner.obs() {
                h.serve.requests.inc();
            }
            let started = Instant::now();
            let keep = api::handle(&inner.state, &req, &mut conn.stream).unwrap_or(false);
            if let Some(h) = inner.obs() {
                h.serve
                    .request_time
                    .observe_ns(started.elapsed().as_nanos() as u64);
            }
            if !keep || inner.shutdown.load(Ordering::SeqCst) {
                Outcome::Close
            } else if has_full_head(&conn.leftover) {
                Outcome::Continue
            } else {
                Outcome::Park
            }
        }
        Err(HttpError::Eof) => Outcome::Close,
        Err(HttpError::Timeout) => {
            let _ = api::error_response(
                &inner.state,
                &mut conn.stream,
                408,
                &Error::request("request did not arrive within the timeout"),
                false,
            );
            Outcome::Close
        }
        Err(HttpError::BadRequest(msg)) => {
            let _ = api::error_response(
                &inner.state,
                &mut conn.stream,
                400,
                &Error::request(msg),
                false,
            );
            Outcome::Close
        }
        Err(HttpError::TooLarge(msg)) => {
            let _ = api::error_response(
                &inner.state,
                &mut conn.stream,
                413,
                &Error::request(msg),
                false,
            );
            Outcome::Close
        }
        Err(HttpError::Io(_)) => Outcome::Close,
    }
}

fn has_full_head(buf: &[u8]) -> bool {
    buf.len() >= 4 && buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Fallback engine: one thread per connection, same admission and drain
/// semantics, no poller.
#[cfg(not(target_os = "linux"))]
fn accept_blocking(inner: &Arc<Inner>, listener: &TcpListener, timeout: Duration) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if inner.live.load(Ordering::SeqCst) >= inner.max_conns {
            shed(inner, stream);
            continue;
        }
        if admit(inner, &stream, timeout).is_err() {
            continue;
        }
        let inner = Arc::clone(inner);
        let _ = thread::Builder::new().name("ats-serve-conn".into()).spawn(move || {
            let mut conn = Conn {
                stream,
                leftover: Vec::new(),
            };
            loop {
                match serve_one(&inner, &mut conn) {
                    Outcome::Close => return inner.close_conn(conn),
                    Outcome::Continue | Outcome::Park => {
                        if inner.shutdown.load(Ordering::SeqCst) {
                            return inner.close_conn(conn);
                        }
                    }
                }
            }
        });
    }
}
