//! Route dispatch: the public endpoint surface over [`Session`].
//!
//! | Route | Semantics |
//! |---|---|
//! | `POST /v1/analyze` | one scenario spec line in, `ats-report/1` bytes out (read-through cached) |
//! | `POST /v1/campaign` | JSONL spec in, streamed `ats-serve-row/1` JSONL out |
//! | `GET /v1/artifacts/{key}/{file}` | raw cached artifact (`row.json`, `report.json`, `trace.atsb`) |
//! | `GET /metrics` | Prometheus text exposition of the session registry |
//! | `GET /v1/version` | schema + analysis version document |
//! | `GET /healthz` | liveness |
//!
//! Error bodies are `ats-serve-error/1` documents carrying the stable
//! [`ats_core::ErrorKind`] discriminant; the status is
//! [`crate::wire::status_of`] (malformed spec → 400, unknown key → 404,
//! over budget → 429).

use crate::http::{self, Request};
use crate::tenant::{TenantGov, DEFAULT_TENANT};
use crate::wire::{self, RowDoc};
use ats_analyzer::ReportDoc;
use ats_core::Error;
use ats_fuzz::{oracle, Scenario};
use ats_harness::cache::{REPORT_FILE, TRACE_FILE};
use ats_harness::pool::run_indexed;
use ats_harness::Session;
use ats_store::CacheKey;
use std::io::{self, Write};

/// Everything a request handler needs, shared across workers.
#[derive(Debug, Clone)]
pub struct AppState {
    /// The session every run executes under.
    pub session: Session,
    /// Per-tenant budgets.
    pub gov: TenantGov,
    /// Scenarios per pool batch when streaming a campaign.
    pub campaign_chunk: usize,
}

impl AppState {
    fn obs(&self) -> Option<&ats_obs::Handle> {
        self.session.obs()
    }
}

/// Handle one parsed request: write exactly one response to `stream`,
/// return whether the connection may be kept alive.
pub fn handle(state: &AppState, req: &Request, stream: &mut impl Write) -> io::Result<bool> {
    let keep = !req.wants_close();
    let tenant = req.header("x-ats-tenant").unwrap_or(DEFAULT_TENANT);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => respond(state, stream, 200, "text/plain", &[], b"ok\n", keep),
        ("GET", "/v1/version") => {
            let body = wire::version_doc().render_pretty();
            respond(state, stream, 200, "application/json", &[], body.as_bytes(), keep)
        }
        ("GET", "/metrics") => match state.session.prometheus() {
            Some(text) => respond(
                state,
                stream,
                200,
                "text/plain; version=0.0.4",
                &[],
                text.as_bytes(),
                keep,
            ),
            None => error_response(
                state,
                stream,
                404,
                &Error::request("observability is disabled in this session"),
                keep,
            ),
        },
        ("POST", "/v1/analyze") => {
            let Some(_permit) = state.gov.admit(tenant) else {
                return over_budget(state, stream, tenant, keep);
            };
            match analyze(state, req) {
                Ok(out) => {
                    let cache_state = if out.cached { "hit" } else { "miss" };
                    let hex = out.key.hex();
                    respond(
                        state,
                        stream,
                        200,
                        "application/json",
                        &[("x-ats-key", hex.as_str()), ("x-ats-cache", cache_state)],
                        &out.report,
                        keep,
                    )
                }
                Err(e) => error_response(state, stream, wire::status_of(e.kind()), &e, keep),
            }
        }
        ("POST", "/v1/campaign") => {
            let Some(_permit) = state.gov.admit(tenant) else {
                return over_budget(state, stream, tenant, keep);
            };
            campaign(state, req, stream, keep)
        }
        ("GET", path) if path.starts_with("/v1/artifacts/") => match artifact(state, path) {
            Ok((content_type, bytes)) => {
                respond(state, stream, 200, content_type, &[], &bytes, keep)
            }
            Err((status, e)) => error_response(state, stream, status, &e, keep),
        },
        (_, "/healthz" | "/v1/version" | "/metrics" | "/v1/analyze" | "/v1/campaign") => {
            error_response(
                state,
                stream,
                405,
                &Error::request(format!("method {} not allowed here", req.method)),
                keep,
            )
        }
        (_, path) => error_response(
            state,
            stream,
            404,
            &Error::request(format!("no route `{path}`")),
            keep,
        ),
    }
}

fn over_budget(
    state: &AppState,
    stream: &mut impl Write,
    tenant: &str,
    keep: bool,
) -> io::Result<bool> {
    error_response(
        state,
        stream,
        429,
        &Error::request(format!("tenant `{tenant}` is over its concurrency budget")),
        keep,
    )
}

/// Write an `ats-serve-error/1` body with `status`.
pub fn error_response(
    state: &AppState,
    stream: &mut impl Write,
    status: u16,
    err: &Error,
    keep: bool,
) -> io::Result<bool> {
    let body = wire::error_body(err);
    respond(state, stream, status, "application/json", &[], body.as_bytes(), keep)
}

fn respond(
    state: &AppState,
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    keep: bool,
) -> io::Result<bool> {
    if let Some(h) = state.obs() {
        if status >= 400 {
            h.serve.errors.inc();
        }
        h.serve.bytes_out.add(body.len() as u64);
    }
    http::write_response(stream, status, content_type, extra, body, keep)?;
    Ok(keep)
}

struct AnalyzeOut {
    key: CacheKey,
    cached: bool,
    report: Vec<u8>,
}

/// Run (or replay) one scenario, returning the frozen `ats-report/1`
/// bytes. Read-through: a hit returns the stored `report.json` verbatim;
/// a miss executes, analyzes, and publishes report + ATSB trace.
fn run_scenario(state: &AppState, sc: &Scenario) -> Result<AnalyzeOut, Error> {
    sc.validate()?;
    let opts = state.session.opts();
    let key = wire::scenario_key(sc, opts, state.session.analyzer_config());
    if let Some(cache) = state.session.result_cache() {
        if let Some(entry) = cache.lookup(&key)? {
            if let Some(bytes) = entry.file(REPORT_FILE) {
                return Ok(AnalyzeOut {
                    key,
                    cached: true,
                    report: bytes.to_vec(),
                });
            }
        }
    }
    let trace = oracle::execute(sc, opts)?;
    let report = state.session.analyze(&trace).to_json().into_bytes();
    if let Some(cache) = state.session.result_cache() {
        let mut atsb = Vec::new();
        ats_trace::binfmt::write_binary(&trace, &mut atsb).map_err(Error::from)?;
        let ingredients = wire::scenario_key_doc(sc, opts, state.session.analyzer_config());
        cache.publish(&key, &ingredients, &[(REPORT_FILE, &report), (TRACE_FILE, &atsb)])?;
    }
    Ok(AnalyzeOut {
        key,
        cached: false,
        report,
    })
}

fn analyze(state: &AppState, req: &Request) -> Result<AnalyzeOut, Error> {
    let spec = std::str::from_utf8(&req.body)
        .map_err(|_| Error::scenario("spec body is not UTF-8"))?
        .trim();
    if spec.is_empty() {
        return Err(Error::scenario("empty scenario spec"));
    }
    let sc = Scenario::parse_line(spec)?;
    run_scenario(state, &sc)
}

/// Stream a campaign: validate every spec line up front (any malformed
/// line fails the whole request with 400 before the stream starts), then
/// execute in pool-parallel batches, writing one `ats-serve-row/1` JSONL
/// line per scenario in input order as each batch completes.
fn campaign(
    state: &AppState,
    req: &Request,
    stream: &mut impl Write,
    keep: bool,
) -> io::Result<bool> {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            let e = Error::scenario("campaign body is not UTF-8");
            return error_response(state, stream, wire::status_of(e.kind()), &e, keep);
        }
    };
    let mut scenarios = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Scenario::parse_line(line).and_then(|sc| sc.validate().map(|()| sc)) {
            Ok(sc) => scenarios.push(sc),
            Err(e) => {
                let e = Error::scenario(format!("line {}: {e}", i + 1));
                return error_response(state, stream, wire::status_of(e.kind()), &e, keep);
            }
        }
    }
    if scenarios.is_empty() {
        let e = Error::scenario("campaign has no scenarios");
        return error_response(state, stream, wire::status_of(e.kind()), &e, keep);
    }

    let count = scenarios.len().to_string();
    http::start_chunked(
        stream,
        200,
        "application/jsonl",
        &[("x-ats-count", count.as_str())],
        keep,
    )?;
    let max_nprocs = scenarios.iter().map(|s| s.nprocs).max().unwrap_or(1);
    let jobs = state.gov.campaign_jobs(
        state.session.opts().jobs,
        state.session.opts().backend,
        max_nprocs,
    );
    for chunk in scenarios.chunks(self::chunk_size(state)) {
        let results = run_indexed(jobs.min(chunk.len()).max(1), chunk.len(), |i| {
            run_scenario(state, &chunk[i])
        });
        for (sc, result) in chunk.iter().zip(results) {
            let line = match result.and_then(|out| row_of(sc, &out)) {
                Ok(row) => row.to_line(),
                Err(e) => {
                    let mut l = wire::error_doc(e.kind().as_str(), &e.to_string()).render();
                    l.push('\n');
                    l
                }
            };
            if let Some(h) = state.obs() {
                h.serve.rows_streamed.inc();
                h.serve.bytes_out.add(line.len() as u64);
            }
            http::write_chunk(stream, line.as_bytes())?;
        }
    }
    http::finish_chunked(stream)?;
    Ok(keep)
}

fn chunk_size(state: &AppState) -> usize {
    state.campaign_chunk.max(1)
}

/// Summarize a finished scenario as a streamed row. The summary is read
/// back out of the frozen report bytes — the one report definition is the
/// only parser involved.
fn row_of(sc: &Scenario, out: &AnalyzeOut) -> Result<RowDoc, Error> {
    let text = std::str::from_utf8(&out.report)
        .map_err(|_| Error::report("cached report is not UTF-8"))?;
    let doc = ReportDoc::parse(text)?;
    Ok(RowDoc {
        scenario: sc.to_string(),
        key: out.key.hex(),
        cached: out.cached,
        findings: doc.findings.len() as u64,
        max_severity: doc
            .findings
            .iter()
            .map(|f| f.severity)
            .fold(0.0, f64::max),
        total_wait_ns: doc.total_wait().as_nanos(),
    })
}

/// `GET /v1/artifacts/{hex-key}/{file}` → verbatim artifact bytes.
fn artifact(state: &AppState, path: &str) -> Result<(&'static str, Vec<u8>), (u16, Error)> {
    let rest = path.strip_prefix("/v1/artifacts/").unwrap_or_default();
    let Some((hex, file)) = rest.split_once('/') else {
        return Err((
            400,
            Error::request("artifact path must be /v1/artifacts/{key}/{file}"),
        ));
    };
    let Some(key) = CacheKey::from_hex(hex) else {
        return Err((400, Error::request(format!("malformed cache key `{hex}`"))));
    };
    let Some(cache) = state.session.result_cache() else {
        return Err((404, Error::request("this session has no artifact store")));
    };
    let entry = cache
        .store
        .get(&key)
        .map_err(|e| (500, e))?
        .ok_or_else(|| (404, Error::request(format!("unknown cache key `{hex}`"))))?;
    let bytes = entry
        .file(file)
        .ok_or_else(|| (404, Error::request(format!("entry has no artifact `{file}`"))))?
        .to_vec();
    let content_type = if file.ends_with(".json") {
        "application/json"
    } else if file.ends_with(".atsb") {
        "application/octet-stream"
    } else {
        "text/plain"
    };
    Ok((content_type, bytes))
}
