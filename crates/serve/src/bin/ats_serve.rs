//! `ats-serve` — run the campaign service from the command line.
//!
//! ```text
//! ats_serve [--addr HOST:PORT] [--cache {off,ro,rw}] [--cache-dir DIR]
//!           [--workers N] [--max-conns N] [--tenant-inflight N]
//!           [--procs N] [--jobs N] [--threshold T] [--realistic]
//! ```
//!
//! Observability is always on: `GET /metrics` serves the session
//! registry. The process runs until killed; the artifact store defaults
//! to read-write so campaigns warm it up.

use ats_harness::Session;
use ats_obs::ObsConfig;
use ats_serve::{start, ServeConfig};
use ats_store::CacheMode;

fn value_of(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parsed_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match value_of(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{name} needs a valid value, got {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: ats_serve [--addr HOST:PORT] [--cache {{off,ro,rw}}] [--cache-dir DIR]\n\
             \x20                [--workers N] [--max-conns N] [--tenant-inflight N]\n\
             \x20                [--procs N] [--jobs N] [--threshold T] [--realistic]"
        );
        return;
    }
    let cache_mode: CacheMode = parsed_or(&args, "--cache", CacheMode::ReadWrite);

    let mut builder = Session::builder()
        .procs(parsed_or(&args, "--procs", 4))
        .jobs(parsed_or(&args, "--jobs", 0))
        .threshold(parsed_or(&args, "--threshold", 0.005))
        .obs(ObsConfig::on())
        .cache(cache_mode);
    if let Some(dir) = value_of(&args, "--cache-dir") {
        builder = builder.cache_dir(dir);
    }
    if args.iter().any(|a| a == "--realistic") {
        builder = builder.realistic();
    }
    let session = builder.build();

    let mut config = ServeConfig {
        addr: value_of(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_owned()),
        ..ServeConfig::default()
    };
    config.workers = parsed_or(&args, "--workers", config.workers);
    config.max_conns = parsed_or(&args, "--max-conns", config.max_conns);
    config.tenant_inflight = parsed_or(&args, "--tenant-inflight", config.tenant_inflight);

    let handle = match start(session, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ats-serve: cannot start: {e}");
            std::process::exit(1);
        }
    };
    println!("ats-serve listening on http://{}", handle.addr());
    println!("  POST /v1/analyze    one scenario spec line -> ats-report/1");
    println!("  POST /v1/campaign   JSONL specs -> streamed ats-serve-row/1");
    println!("  GET  /v1/artifacts/{{key}}/{{file}}");
    println!("  GET  /metrics | /v1/version | /healthz");
    loop {
        std::thread::park();
    }
}
