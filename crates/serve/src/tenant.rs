//! Per-tenant concurrency budgets.
//!
//! Tenants are identified by the `X-Ats-Tenant` request header (absent →
//! `"anon"`). Each tenant gets an independent in-flight request cap, so
//! one client hammering the service cannot starve the others: requests
//! over the cap are answered `429` immediately (connection kept alive —
//! the tenant is over budget, the server is not).
//!
//! Campaign execution reuses the [`ats_harness::pool`] budget arithmetic:
//! a tenant's sweep runs with `effective_jobs(requested, threads-per-
//! scenario, budget / active-tenants)`, so simulated-rank threads stay
//! bounded however many tenants stream campaigns concurrently.

use ats_harness::pool::{default_thread_budget, effective_jobs, threads_per_config};
use ats_runtime::SimBackend;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Tenant name used when no `X-Ats-Tenant` header is present.
pub const DEFAULT_TENANT: &str = "anon";

#[derive(Debug, Default)]
struct State {
    /// In-flight requests per tenant (entries removed at zero).
    inflight: HashMap<String, usize>,
}

/// The shared tenant governor.
#[derive(Debug, Clone)]
pub struct TenantGov {
    max_inflight: usize,
    state: Arc<Mutex<State>>,
}

impl TenantGov {
    /// A governor allowing `max_inflight` concurrent requests per tenant.
    pub fn new(max_inflight: usize) -> TenantGov {
        TenantGov {
            max_inflight: max_inflight.max(1),
            state: Arc::new(Mutex::new(State::default())),
        }
    }

    /// Try to admit one request for `tenant`. `None` means the tenant is
    /// over budget (answer 429); the permit releases its slot on drop.
    pub fn admit(&self, tenant: &str) -> Option<TenantPermit> {
        let mut st = self.state.lock().unwrap();
        let count = st.inflight.entry(tenant.to_owned()).or_insert(0);
        if *count >= self.max_inflight {
            if *count == 0 {
                st.inflight.remove(tenant);
            }
            return None;
        }
        *count += 1;
        Some(TenantPermit {
            tenant: tenant.to_owned(),
            state: Arc::clone(&self.state),
        })
    }

    /// Number of tenants with at least one in-flight request.
    pub fn active_tenants(&self) -> usize {
        self.state.lock().unwrap().inflight.len()
    }

    /// In-flight requests for `tenant` right now.
    pub fn inflight_of(&self, tenant: &str) -> usize {
        self.state
            .lock()
            .unwrap()
            .inflight
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// The worker count a campaign for this tenant may use right now:
    /// the session's requested jobs, clamped by the process thread budget
    /// split evenly across currently active tenants.
    pub fn campaign_jobs(&self, requested: usize, backend: SimBackend, nprocs: usize) -> usize {
        let tenants = self.active_tenants().max(1);
        let budget = (default_thread_budget() / tenants).max(1);
        effective_jobs(requested, threads_per_config(backend, nprocs), budget)
    }
}

/// One admitted request; dropping it releases the tenant slot.
#[derive(Debug)]
pub struct TenantPermit {
    tenant: String,
    state: Arc<Mutex<State>>,
}

impl Drop for TenantPermit {
    fn drop(&mut self) {
        let mut st = self.state.lock().unwrap();
        if let Some(count) = st.inflight.get_mut(&self.tenant) {
            *count -= 1;
            if *count == 0 {
                st.inflight.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_caps_are_independent() {
        let gov = TenantGov::new(2);
        let a1 = gov.admit("a").unwrap();
        let _a2 = gov.admit("a").unwrap();
        assert!(gov.admit("a").is_none(), "tenant a is at its cap");
        let _b1 = gov.admit("b").unwrap();
        assert_eq!(gov.active_tenants(), 2);
        assert_eq!(gov.inflight_of("a"), 2);
        drop(a1);
        assert_eq!(gov.inflight_of("a"), 1);
        assert!(gov.admit("a").is_some(), "slot released on drop");
    }

    #[test]
    fn campaign_jobs_shrink_with_active_tenants() {
        let gov = TenantGov::new(8);
        let solo = gov.campaign_jobs(4, SimBackend::Event, 8);
        let _a = gov.admit("a").unwrap();
        let _b = gov.admit("b").unwrap();
        let _c = gov.admit("c").unwrap();
        let shared = gov.campaign_jobs(4, SimBackend::Event, 8);
        assert!(shared <= solo, "{shared} > {solo}");
        assert!(shared >= 1);
    }
}
