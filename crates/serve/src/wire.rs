//! The service's JSON wire documents and cache-key derivation.
//!
//! Every serve body is canonical [`Json`] ([sorted keys, exact ints —
//! `ats_core::json`](ats_core::json)), so responses are byte-stable and
//! directly comparable to offline artifacts. Reports are **not** wrapped:
//! `/v1/analyze` returns the frozen `ats-report/1` bytes exactly as
//! [`ats_analyzer::ReportDoc::render`] produces them, which is what the
//! byte-identity gate in `serve_bench` checks.

use ats_analyzer::AnalyzerConfig;
use ats_core::json::Json;
use ats_core::{Error, ErrorKind};
use ats_fuzz::Scenario;
use ats_harness::cache::model_json;
use ats_harness::RunOpts;
use ats_store::CacheKey;

/// Schema tag of the version document (`GET /v1/version`).
pub const SERVE_SCHEMA: &str = "ats-serve/1";
/// Schema tag of one streamed campaign row.
pub const ROW_SCHEMA: &str = "ats-serve-row/1";
/// Schema tag of error bodies.
pub const ERROR_SCHEMA: &str = "ats-serve-error/1";
/// Schema tag of the service's cache-key ingredient documents.
pub const KEY_SCHEMA: &str = "ats-serve-key/1";

/// An error body: the stable `ats_core::ErrorKind` discriminant plus the
/// rendered message.
pub fn error_doc(kind: &str, message: &str) -> Json {
    Json::obj()
        .with("error", message)
        .with("kind", kind)
        .with("schema", ERROR_SCHEMA)
}

/// The error body for a suite [`Error`].
pub fn error_body(err: &Error) -> String {
    let mut s = error_doc(err.kind().as_str(), &err.to_string()).render();
    s.push('\n');
    s
}

/// Map a suite [`ErrorKind`] to the HTTP status the service answers with.
pub fn status_of(kind: ErrorKind) -> u16 {
    match kind {
        ErrorKind::Scenario
        | ErrorKind::InvalidParam
        | ErrorKind::UnknownProperty
        | ErrorKind::Report
        | ErrorKind::Request => 400,
        ErrorKind::Store => 500,
        _ => 500,
    }
}

/// The key-ingredients document for one scenario under one session
/// configuration: everything that determines the report bytes (scenario
/// text form, execution model, analyzer version + config), nothing that
/// merely schedules the work — the same contract as
/// [`ats_harness::cache::config_key_doc`].
pub fn scenario_key_doc(sc: &Scenario, opts: &RunOpts, analyzer: &AnalyzerConfig) -> Json {
    Json::obj()
        .with("schema", KEY_SCHEMA)
        .with("engine", "serve")
        .with("scenario", sc.to_string())
        .with("backend", opts.backend.label())
        .with("model", model_json(&opts.model))
        .with("work_mode", format!("{:?}", opts.work_mode))
        .with(
            "base",
            Json::obj()
                .with("dtype", format!("{:?}", opts.base.dtype))
                .with("count", opts.base.count),
        )
        .with("init_time_ns", opts.init_time.0)
        .with("finalize_time_ns", opts.finalize_time.0)
        .with(
            "analyzer",
            Json::obj()
                .with("version", ats_analyzer::ANALYSIS_VERSION)
                .with("threshold", analyzer.threshold)
                .with("report_setup_overhead", analyzer.report_setup_overhead),
        )
        .with("trace_format", "atsb")
}

/// The cache key for one scenario (see [`scenario_key_doc`]).
pub fn scenario_key(sc: &Scenario, opts: &RunOpts, analyzer: &AnalyzerConfig) -> CacheKey {
    CacheKey::of_value(&scenario_key_doc(sc, opts, analyzer))
}

/// One streamed campaign row (returned as a single JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub struct RowDoc {
    /// The scenario, in compact text form.
    pub scenario: String,
    /// Hex cache key of the scenario's artifacts.
    pub key: String,
    /// Was this row replayed from the store?
    pub cached: bool,
    /// Number of findings in the report.
    pub findings: u64,
    /// Highest finding severity (0 when clean).
    pub max_severity: f64,
    /// Total waiting time across findings, integer nanoseconds.
    pub total_wait_ns: u64,
}

impl RowDoc {
    /// The canonical JSON value (schema tag included).
    pub fn to_value(&self) -> Json {
        Json::obj()
            .with("cached", self.cached)
            .with("findings", self.findings)
            .with("key", self.key.clone())
            .with("max_severity", self.max_severity)
            .with("scenario", self.scenario.clone())
            .with("schema", ROW_SCHEMA)
            .with("total_wait_ns", self.total_wait_ns)
    }

    /// One JSONL line (compact rendering + newline).
    pub fn to_line(&self) -> String {
        let mut s = self.to_value().render();
        s.push('\n');
        s
    }

    /// Parse a streamed line back (the client half).
    pub fn parse(line: &str) -> Result<RowDoc, Error> {
        let v = Json::parse(line.trim())
            .map_err(|e| Error::request(format!("invalid row JSON: {e}")))?;
        let schema = v.get("schema").and_then(Json::as_str).unwrap_or_default();
        if schema != ROW_SCHEMA {
            return Err(Error::request(format!(
                "unsupported row schema `{schema}` (expected `{ROW_SCHEMA}`)"
            )));
        }
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::request(format!("row missing `{name}`")))
        };
        Ok(RowDoc {
            scenario: field("scenario")?
                .as_str()
                .ok_or_else(|| Error::request("`scenario` must be a string"))?
                .to_owned(),
            key: field("key")?
                .as_str()
                .ok_or_else(|| Error::request("`key` must be a string"))?
                .to_owned(),
            cached: field("cached")?
                .as_bool()
                .ok_or_else(|| Error::request("`cached` must be a bool"))?,
            findings: field("findings")?
                .as_u64()
                .ok_or_else(|| Error::request("`findings` must be a count"))?,
            max_severity: field("max_severity")?
                .as_f64()
                .ok_or_else(|| Error::request("`max_severity` must be a number"))?,
            total_wait_ns: field("total_wait_ns")?
                .as_u64()
                .ok_or_else(|| Error::request("`total_wait_ns` must be a count"))?,
        })
    }
}

/// The `GET /v1/version` document.
pub fn version_doc() -> Json {
    Json::obj()
        .with("analysis_version", ats_analyzer::ANALYSIS_VERSION)
        .with("report_schema", ats_analyzer::REPORT_SCHEMA)
        .with("row_schema", ROW_SCHEMA)
        .with("schema", SERVE_SCHEMA)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> Scenario {
        Scenario::parse_line("seed=0x2a nprocs=4 | whole g0:late_sender r=1").unwrap()
    }

    #[test]
    fn row_lines_round_trip() {
        let row = RowDoc {
            scenario: sample_scenario().to_string(),
            key: "ab".repeat(16),
            cached: true,
            findings: 2,
            max_severity: 0.25,
            total_wait_ns: 123_456_789,
        };
        let line = row.to_line();
        assert!(line.ends_with('\n'));
        let back = RowDoc::parse(&line).unwrap();
        assert_eq!(back, row);
        assert_eq!(back.to_line(), line);
        assert!(RowDoc::parse("{\"schema\":\"nope/9\"}").is_err());
    }

    #[test]
    fn scenario_keys_separate_results_not_scheduling() {
        let sc = sample_scenario();
        let opts = RunOpts::default();
        let analyzer = AnalyzerConfig::default();
        let base = scenario_key(&sc, &opts, &analyzer);
        // Result-determining flips change the key…
        let mut other = sc.clone();
        other.seed ^= 1;
        assert_ne!(scenario_key(&other, &opts, &analyzer), base);
        let mut hot = analyzer.clone();
        hot.threshold *= 2.0;
        assert_ne!(scenario_key(&sc, &opts, &hot), base);
        // …scheduling knobs do not.
        assert_eq!(scenario_key(&sc, &RunOpts::default().jobs(9), &analyzer), base);
        let doc = scenario_key_doc(&sc, &opts, &analyzer);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(KEY_SCHEMA));
    }

    #[test]
    fn error_bodies_carry_the_discriminant() {
        let err = Error::scenario("bad spec");
        assert_eq!(status_of(err.kind()), 400);
        let body = error_body(&err);
        let v = Json::parse(body.trim()).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("scenario"));
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(ERROR_SCHEMA));
    }
}
