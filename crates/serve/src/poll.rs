//! Readiness polling for the connection event loop.
//!
//! On Linux this is a thin safe wrapper over raw `epoll` syscalls
//! (declared directly — the container links no external crates, and the
//! suite already hand-rolls its context switches). Connections are
//! registered edge-agnostic with `EPOLLONESHOT`: one readiness event is
//! delivered, the connection migrates to a worker, and the worker re-arms
//! it after writing the response — so a socket is never owned by two
//! threads at once.
//!
//! Other targets fall back to a thread-per-connection server (see
//! `server.rs`), which needs no poller.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;

#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

unsafe extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// One delivered readiness event: the registered token, and whether the
/// peer already hung up.
#[derive(Debug, Clone, Copy)]
pub struct Ready {
    /// The token passed at registration (the connection fd).
    pub token: u64,
    /// Peer closed its end (`EPOLLRDHUP`/error).
    pub hangup: bool,
}

/// A safe epoll handle.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// A new epoll instance.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(0) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLRDHUP | if oneshot { EPOLLONESHOT } else { 0 },
            data: token,
        };
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` for one read-readiness delivery carrying `token`.
    pub fn add_oneshot(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, true)
    }

    /// Re-arm an fd previously registered with [`Poller::add_oneshot`].
    pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, true)
    }

    /// Register a permanently-armed fd (the wake channel).
    pub fn add_level(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, false)
    }

    /// Block up to `timeout_ms` (`-1` = forever) and append delivered
    /// events to `out`. Returns the number delivered.
    pub fn wait(&self, out: &mut Vec<Ready>, timeout_ms: i32) -> io::Result<usize> {
        const MAX: usize = 256;
        let mut events: [EpollEvent; MAX] = unsafe { std::mem::zeroed() };
        let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), MAX as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in events.iter().take(n as usize) {
            let events_mask = ev.events;
            let data = ev.data;
            out.push(Ready {
                token: data,
                hangup: events_mask & EPOLLRDHUP != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn oneshot_delivers_once_until_rearmed() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        poller.add_oneshot(b.as_raw_fd(), 7).unwrap();

        let mut out = Vec::new();
        assert_eq!(poller.wait(&mut out, 0).unwrap(), 0, "nothing readable yet");

        a.write_all(b"x").unwrap();
        poller.wait(&mut out, 1000).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 7);
        assert!(!out[0].hangup);

        // One-shot: armed state is consumed even though data remains.
        out.clear();
        assert_eq!(poller.wait(&mut out, 0).unwrap(), 0);

        poller.rearm(b.as_raw_fd(), 7).unwrap();
        poller.wait(&mut out, 1000).unwrap();
        assert_eq!(out.len(), 1, "re-armed fd delivers again");

        drop(a);
        poller.rearm(b.as_raw_fd(), 7).unwrap();
        out.clear();
        poller.wait(&mut out, 1000).unwrap();
        assert!(out[0].hangup, "peer close reported as hangup");
    }
}
