//! A typed blocking client for the service.
//!
//! One [`Client`] owns one keep-alive connection and retries a request
//! exactly once on a stale-connection failure (the server may have
//! closed an idle keep-alive socket between requests — the failure mode
//! every HTTP client must absorb). Both the replay load driver
//! (`serve_bench`) and the integration tests speak to the server through
//! this type, so the client-visible contract is tested, not just the
//! server's framing.

use crate::wire::RowDoc;
use ats_core::json::Json;
use ats_core::Error;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes (chunked transfer already decoded).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// The result of `POST /v1/analyze`.
#[derive(Debug, Clone)]
pub struct AnalyzeResult {
    /// Hex cache key (the `x-ats-key` header).
    pub key: String,
    /// Whether the report was replayed from the store.
    pub cached: bool,
    /// Verbatim `ats-report/1` bytes.
    pub report: Vec<u8>,
}

/// A blocking keep-alive client for one server address.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    tenant: Option<String>,
    timeout: Duration,
    stream: Option<TcpStream>,
    leftover: Vec<u8>,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            tenant: None,
            timeout: Duration::from_secs(30),
            stream: None,
            leftover: Vec::new(),
        }
    }

    /// Send an `X-Ats-Tenant` header on every request.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Client {
        self.tenant = Some(tenant.into());
        self
    }

    /// Socket read/write timeout (default 30 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        self.stream = Some(stream);
        self.leftover.clear();
        Ok(())
    }

    /// Issue one request and decode the response. Reconnects and retries
    /// once if a reused keep-alive connection turns out to be stale.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<Response, Error> {
        for _attempt in 0..2 {
            let reused = self.stream.is_some();
            if !reused {
                self.connect()
                    .map_err(|e| Error::request(format!("connect {}: {e}", self.addr)))?;
            }
            match self.try_once(method, path, content_type, body) {
                Ok(resp) => {
                    if resp
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                    {
                        self.stream = None;
                        self.leftover.clear();
                    }
                    return Ok(resp);
                }
                Err(e) => {
                    self.stream = None;
                    self.leftover.clear();
                    if !reused {
                        return Err(Error::request(format!("{method} {path}: {e}")));
                    }
                    // Stale keep-alive connection: retry on a fresh one.
                }
            }
        }
        unreachable!("second attempt always runs on a fresh connection")
    }

    /// Write one request without reading its response. The load driver's
    /// barrier round uses this: every client writes, all synchronize
    /// (the requests are now provably in flight together), then all call
    /// [`Client::finish`]. No stale-connection retry.
    pub fn start(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<(), Error> {
        if self.stream.is_none() {
            self.connect()
                .map_err(|e| Error::request(format!("connect {}: {e}", self.addr)))?;
        }
        self.write_request(method, path, content_type, body)
            .map_err(|e| Error::request(format!("{method} {path}: {e}")))
    }

    /// Read the response to a request written with [`Client::start`].
    pub fn finish(&mut self) -> Result<Response, Error> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| Error::request("no request in flight"))?;
        let resp = read_response(stream, &mut self.leftover)
            .map_err(|e| Error::request(format!("read response: {e}")))?;
        if resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.stream = None;
            self.leftover.clear();
        }
        Ok(resp)
    }

    fn try_once(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<Response> {
        self.write_request(method, path, content_type, body)?;
        let stream = self.stream.as_mut().expect("connected");
        read_response(stream, &mut self.leftover)
    }

    fn write_request(
        &mut self,
        method: &str,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<()> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n",
            self.addr,
            body.len()
        );
        if let Some(ct) = content_type {
            head.push_str("content-type: ");
            head.push_str(ct);
            head.push_str("\r\n");
        }
        if let Some(t) = &self.tenant {
            head.push_str("x-ats-tenant: ");
            head.push_str(t);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.stream.as_mut().expect("connected");
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()
    }

    /// `GET /healthz`, expecting 200.
    pub fn healthz(&mut self) -> Result<(), Error> {
        let resp = self.request("GET", "/healthz", None, b"")?;
        expect_status(&resp, 200).map(|_| ())
    }

    /// `GET /v1/version` as parsed JSON.
    pub fn version(&mut self) -> Result<Json, Error> {
        let resp = self.request("GET", "/v1/version", None, b"")?;
        let resp = expect_status(resp, 200)?;
        Json::parse(resp.text().trim())
            .map_err(|e| Error::request(format!("invalid version body: {e}")))
    }

    /// `GET /metrics` Prometheus text.
    pub fn metrics(&mut self) -> Result<String, Error> {
        let resp = self.request("GET", "/metrics", None, b"")?;
        Ok(expect_status(resp, 200)?.text())
    }

    /// `POST /v1/analyze` with one scenario spec line.
    pub fn analyze(&mut self, spec: &str) -> Result<AnalyzeResult, Error> {
        let resp = self.request("POST", "/v1/analyze", Some("text/plain"), spec.as_bytes())?;
        let resp = expect_status(resp, 200)?;
        Ok(AnalyzeResult {
            key: resp.header("x-ats-key").unwrap_or_default().to_owned(),
            cached: resp.header("x-ats-cache") == Some("hit"),
            report: resp.body,
        })
    }

    /// `POST /v1/campaign` with a JSONL spec body; one result per
    /// streamed line (a row, or the error the server reported for that
    /// scenario).
    pub fn campaign(&mut self, jsonl: &str) -> Result<Vec<Result<RowDoc, Error>>, Error> {
        let resp = self.request(
            "POST",
            "/v1/campaign",
            Some("application/jsonl"),
            jsonl.as_bytes(),
        )?;
        let resp = expect_status(resp, 200)?;
        let text = resp.text();
        Ok(text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|line| {
                RowDoc::parse(line).map_err(|_| match Json::parse(line.trim()) {
                    Ok(v) => Error::request(format!(
                        "row error: {} (kind {})",
                        v.get("error").and_then(Json::as_str).unwrap_or("?"),
                        v.get("kind").and_then(Json::as_str).unwrap_or("?"),
                    )),
                    Err(e) => Error::request(format!("undecodable row line: {e}")),
                })
            })
            .collect())
    }

    /// `GET /v1/artifacts/{key}/{file}` raw bytes.
    pub fn artifact(&mut self, key: &str, file: &str) -> Result<Vec<u8>, Error> {
        let path = format!("/v1/artifacts/{key}/{file}");
        let resp = self.request("GET", &path, None, b"")?;
        Ok(expect_status(resp, 200)?.body)
    }
}

fn expect_status<R: std::borrow::Borrow<Response>>(resp: R, want: u16) -> Result<R, Error> {
    let r = resp.borrow();
    if r.status == want {
        return Ok(resp);
    }
    let (kind, message) = match Json::parse(r.text().trim()) {
        Ok(v) => (
            v.get("kind")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
            v.get("error")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_owned(),
        ),
        Err(_) => ("?".to_owned(), r.text()),
    };
    Err(Error::request(format!(
        "HTTP {}: {message} (kind {kind})",
        r.status
    )))
}

/// Decode one response (status line, headers, sized or chunked body).
/// `leftover` carries bytes past this response on a keep-alive socket.
fn read_response(stream: &mut impl Read, leftover: &mut Vec<u8>) -> io::Result<Response> {
    let mut buf = std::mem::take(leftover);
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        fill(stream, &mut buf)?;
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| bad("non-UTF-8 response head"))?
        .to_owned();
    let mut rest = buf.split_off(head_end + 4);

    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("malformed header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_owned()));
    }
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };

    let body = if find("transfer-encoding").is_some_and(|v| v.contains("chunked")) {
        decode_chunked(stream, &mut rest)?
    } else {
        let len: usize = find("content-length")
            .unwrap_or("0")
            .parse()
            .map_err(|_| bad("bad content-length"))?;
        while rest.len() < len {
            fill(stream, &mut rest)?;
        }
        let tail = rest.split_off(len);
        let body = rest;
        rest = tail;
        body
    };
    *leftover = rest;
    Ok(Response {
        status,
        headers,
        body,
    })
}

fn decode_chunked(stream: &mut impl Read, rest: &mut Vec<u8>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let line = take_line(stream, rest)?;
        let size = usize::from_str_radix(line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
        if size == 0 {
            // Consume the terminating CRLF after the zero chunk.
            let _ = take_line(stream, rest)?;
            return Ok(body);
        }
        while rest.len() < size + 2 {
            fill(stream, rest)?;
        }
        body.extend_from_slice(&rest[..size]);
        rest.drain(..size + 2);
    }
}

fn take_line(stream: &mut impl Read, rest: &mut Vec<u8>) -> io::Result<String> {
    loop {
        if let Some(pos) = rest.windows(2).position(|w| w == b"\r\n") {
            let line = String::from_utf8(rest[..pos].to_vec()).map_err(|_| bad("non-UTF-8 line"))?;
            rest.drain(..pos + 2);
            return Ok(line);
        }
        fill(stream, rest)?;
    }
}

fn fill(stream: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut chunk = [0u8; 4096];
    let n = stream.read(&mut chunk)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    buf.extend_from_slice(&chunk[..n]);
    Ok(())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_sized_and_chunked_responses() {
        let bytes =
            b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\nx-ats-cache: hit\r\n\r\nok\nHTTP/1.1 404 Not Found\r\ntransfer-encoding: chunked\r\n\r\n3\r\n{}\n\r\n0\r\n\r\n";
        let mut cur = io::Cursor::new(bytes.to_vec());
        let mut leftover = Vec::new();
        let first = read_response(&mut cur, &mut leftover).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.header("x-ats-cache"), Some("hit"));
        assert_eq!(first.body, b"ok\n");
        let second = read_response(&mut cur, &mut leftover).unwrap();
        assert_eq!(second.status, 404);
        assert_eq!(second.body, b"{}\n");
        assert!(leftover.is_empty());
    }

    #[test]
    fn error_statuses_surface_kind_and_message() {
        let resp = Response {
            status: 400,
            headers: vec![],
            body: b"{\"error\":\"empty scenario spec\",\"kind\":\"scenario\",\"schema\":\"ats-serve-error/1\"}\n".to_vec(),
        };
        let err = expect_status(&resp, 200).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("HTTP 400"), "{msg}");
        assert!(msg.contains("kind scenario"), "{msg}");
        assert!(msg.contains("empty scenario spec"), "{msg}");
    }
}
