//! Minimal HTTP/1.1 framing: request parsing and response writing.
//!
//! The service speaks a deliberately small slice of HTTP — enough for
//! `curl`, Prometheus scrapers and the typed [`crate::Client`]: request
//! line + headers + `Content-Length` bodies in, status + headers +
//! either a sized body or `Transfer-Encoding: chunked` out, keep-alive by
//! default. No external dependency is involved; framing errors surface
//! as [`HttpError`] so the server can answer with the right status
//! instead of dropping the connection.

use std::io::{self, Read, Write};

/// Hard framing limits, applied before any body is buffered.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line + header bytes.
    pub max_head: usize,
    /// Maximum request-body bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head: 16 * 1024,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with query string, as sent (`/v1/analyze`).
    pub path: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be framed.
#[derive(Debug)]
pub enum HttpError {
    /// Clean end of stream before the first request byte (keep-alive
    /// connection closed by the peer; not an error condition).
    Eof,
    /// Malformed request line or headers.
    BadRequest(String),
    /// Head or body over the configured [`Limits`].
    TooLarge(String),
    /// The peer stalled past the socket timeout.
    Timeout,
    /// Any other transport failure.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
            _ => HttpError::Io(e),
        }
    }
}

/// Read one request from `stream`. `leftover` carries bytes read past the
/// previous request on a keep-alive connection; on return it holds any
/// bytes past this one.
pub fn read_request(
    stream: &mut impl Read,
    leftover: &mut Vec<u8>,
    limits: &Limits,
) -> Result<Request, HttpError> {
    let mut buf = std::mem::take(leftover);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head {
            return Err(HttpError::TooLarge(format!(
                "request head over {} bytes",
                limits.max_head
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(HttpError::Eof);
            }
            return Err(HttpError::BadRequest("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let (method, path, headers) = {
        let head = std::str::from_utf8(&buf[..head_end])
            .map_err(|_| HttpError::BadRequest("non-UTF-8 request head".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::BadRequest("empty request".into()))?;
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), Some(v)) if !m.is_empty() && p.starts_with('/') => (m, p, v),
            _ => {
                return Err(HttpError::BadRequest(format!(
                    "malformed request line `{request_line}`"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol `{version}`"
            )));
        }
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| HttpError::BadRequest(format!("malformed header `{line}`")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
        (method.to_owned(), path.to_owned(), headers)
    };

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body {
        return Err(HttpError::TooLarge(format!(
            "request body of {content_length} bytes over {}",
            limits.max_body
        )));
    }

    let body_start = head_end + 4;
    let mut body = buf.split_off(body_start.min(buf.len()));
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated request body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    *leftover = body.split_off(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Standard reason phrase for the status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete sized response. Extra headers are `(name, value)`
/// pairs; `Content-Length` and `Connection` are supplied here.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Start a chunked (streaming) response; follow with [`write_chunk`] and
/// [`finish_chunked`].
pub fn start_chunked(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (k, v) in extra {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())
}

/// Write one chunk (empty input writes nothing — an empty chunk would
/// terminate the stream).
pub fn write_chunk(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(w, "{:x}\r\n", data.len())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")
}

/// Terminate a chunked response.
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut leftover = Vec::new();
        read_request(&mut io::Cursor::new(bytes.to_vec()), &mut leftover, &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/analyze HTTP/1.1\r\nHost: x\r\nX-Ats-Tenant: t1\r\nContent-Length: 4\r\n\r\nspec",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/analyze");
        assert_eq!(req.header("x-ats-tenant"), Some("t1"));
        assert_eq!(req.body, b"spec");
        assert!(!req.wants_close());
    }

    #[test]
    fn keep_alive_leftover_carries_the_next_request() {
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut leftover = Vec::new();
        let mut cur = io::Cursor::new(two.to_vec());
        let first = read_request(&mut cur, &mut leftover, &Limits::default()).unwrap();
        assert_eq!(first.path, "/healthz");
        let second = read_request(&mut cur, &mut leftover, &Limits::default()).unwrap();
        assert_eq!(second.path, "/metrics");
        assert!(matches!(
            read_request(&mut cur, &mut leftover, &Limits::default()),
            Err(HttpError::Eof)
        ));
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(parse(b"NOPE\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse(b"GET /x SPDY/9\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        let huge = format!("POST /v1/analyze HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert!(matches!(parse(huge.as_bytes()), Err(HttpError::TooLarge(_))));
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', 20 * 1024));
        assert!(matches!(parse(&head), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn sized_and_chunked_responses_frame_correctly() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", &[("x-ats-key", "k")], b"ok\n", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.contains("x-ats-key: k\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        start_chunked(&mut out, 200, "application/jsonl", &[], false).unwrap();
        write_chunk(&mut out, b"{}\n").unwrap();
        write_chunk(&mut out, b"").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.ends_with("3\r\n{}\n\r\n0\r\n\r\n"), "{text}");
    }
}
