//! Standalone shared-memory testing: the three OpenMP property functions
//! of the paper's prototype, run without any MPI context (`run_omp`), plus
//! their balanced negatives — exactly the shape of a tool test for an
//! OpenMP-only profiler.
//!
//! Run with: `cargo run --example openmp_suite`

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::core::{properties::negative, properties::omp, Distr};
use ats::omp::{run_omp, OmpConfig};

fn main() {
    let df = Distr::linear(0.005, 0.03);

    for (name, trace) in [
        (
            "imbalance_in_omp_pregion",
            run_omp(OmpConfig::default(), |m| {
                omp::imbalance_in_omp_pregion(m, 4, &df, 3)
            }),
        ),
        (
            "imbalance_at_omp_barrier",
            run_omp(OmpConfig::default(), |m| {
                omp::imbalance_at_omp_barrier(m, 4, &df, 3)
            }),
        ),
        (
            "imbalance_in_omp_loop",
            run_omp(OmpConfig::default(), |m| {
                omp::imbalance_in_omp_loop(m, 4, &df, 3)
            }),
        ),
    ] {
        let report = analyze(&trace, &AnalyzerConfig::default());
        let spec = ats::core::catalog::find(name).unwrap();
        let expected = spec.expected_property.unwrap();
        let sev = report.severity_of(expected);
        println!("{name:<28} -> {expected:<22} severity {:.1}%", sev * 100.0);
        assert!(sev > 0.0, "{name} must be detected");
    }

    // The balanced twins stay silent.
    let trace = run_omp(OmpConfig::default(), |m| {
        negative::balanced_omp_region(m, 4, 0.01, 3);
        negative::balanced_omp_loop(m, 4, 0.002, 4, 2);
    });
    let report = analyze(&trace, &AnalyzerConfig::default());
    assert!(report.is_clean(), "{:?}", report.findings);
    println!("balanced OpenMP programs          -> clean");
    println!("\nopenmp_suite OK");
}
