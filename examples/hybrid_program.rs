//! A hybrid MPI × OpenMP composite: property functions from both paradigms
//! in one program, with nested thread teams inside every rank — the
//! paper's closing scenario for testing hybrid-capable tools.
//!
//! Run with: `cargo run --example hybrid_program`

use ats::core::{composite, CompositeParams};
use ats::mpi::SimConfig;

fn main() {
    let params = CompositeParams {
        basework: 0.004,
        extrawork: 0.016,
        reps: 2,
        ..Default::default()
    };
    let trace = ats::mpi::run(SimConfig::with_procs(4), move |p| {
        let world = p.comm_world();
        composite::hybrid_composite(p, /*threads per rank*/ 4, &params, &world);
    });
    println!(
        "{} locations ({} ranks x up to 4 threads), {} events",
        trace.num_locations(),
        4,
        trace.num_events()
    );
    print!("{}", ats::harness::timeline::render_text(&trace, 110));
    let report = ats::analyzer::analyze(&trace, &ats::analyzer::AnalyzerConfig::default());
    println!("\n{}", report.render(&trace));
    for prop in [
        "LateSender",
        "OmpWaitAtBarrier",
        "OmpImbalanceInRegion",
        "WaitAtBarrier",
        "LateBroadcast",
    ] {
        assert!(
            report.severity_of(prop) > 0.0,
            "hybrid program must exhibit {prop}"
        );
    }
    println!("\nhybrid composite OK: MPI and OpenMP properties detected side by side");
}
