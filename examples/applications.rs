//! The application tier (paper ch. 4): run every mini-application from the
//! collection in its balanced and pathological configurations and check
//! the documented performance behavior with the bundled analyzer.
//!
//! Run with: `cargo run --example applications`

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::apps;

fn verdict(trace: &ats::trace::Trace, expected: &[&str]) -> (bool, Vec<String>) {
    let report = analyze(trace, &AnalyzerConfig::default());
    let all = expected.iter().all(|prop| report.severity_of(prop) > 0.0);
    let found = report
        .findings
        .iter()
        .map(|f| format!("{} {:.1}%", f.property, f.severity * 100.0))
        .collect();
    (all, found)
}

fn main() {
    println!("=== ATS application collection (paper ch. 4) ===\n");
    for spec in apps::collection() {
        println!("{}: {}", spec.name, spec.description);
        println!("  structure: {}", spec.structure);
        println!("  balanced:  {}", spec.balanced_behavior);
    }
    println!("\n--- executing balanced vs. pathological configurations ---\n");

    let (t, _) = apps::jacobi::run(&apps::jacobi::JacobiConfig::balanced(4));
    let clean = analyze(&t, &AnalyzerConfig::default()).is_clean();
    let (t, _) = apps::jacobi::run(&apps::jacobi::JacobiConfig::imbalanced(4));
    let (found, details) = verdict(&t, apps::jacobi::SPEC.imbalanced_properties);
    println!("jacobi          balanced-clean={clean} pathological-detected={found} {details:?}");

    let (t, _) = apps::taskfarm::run(&apps::taskfarm::FarmConfig::starved(4));
    let (found, details) = verdict(&t, apps::taskfarm::SPEC.imbalanced_properties);
    println!("taskfarm        starved-detected={found} {details:?}");

    let (t, _) = apps::pipeline::run(&apps::pipeline::PipelineConfig::bottlenecked(4));
    let (found, details) = verdict(&t, apps::pipeline::SPEC.imbalanced_properties);
    println!("pipeline        bottleneck-detected={found} {details:?}");

    let (t, _) = apps::transpose::run(&apps::transpose::TransposeConfig::balanced(4));
    let clean = analyze(&t, &AnalyzerConfig::default()).is_clean();
    let (t, _) = apps::transpose::run(&apps::transpose::TransposeConfig::skewed(4));
    let (found, details) = verdict(&t, apps::transpose::SPEC.imbalanced_properties);
    println!("transpose       balanced-clean={clean} skewed-detected={found} {details:?}");

    let (t, _) = apps::hybrid_stencil::run(&apps::hybrid_stencil::HybridConfig::balanced(2, 4));
    let clean = analyze(&t, &AnalyzerConfig::default()).is_clean();
    let (t, _) = apps::hybrid_stencil::run(&apps::hybrid_stencil::HybridConfig::skewed(3, 4));
    let (found, details) = verdict(&t, apps::hybrid_stencil::SPEC.imbalanced_properties);
    println!("hybrid_stencil  balanced-clean={clean} skewed-detected={found} {details:?}");

    println!("\napplication collection OK");
}
