//! The paper's Figures 3.4 + 3.5: the lower and upper halves of the ranks
//! form separate communicators and run different property sets *in
//! parallel*; the analysis must attribute each property to the right
//! communicator, call path, and ranks.
//!
//! Run with: `cargo run --example two_communicators [-- nprocs]`

use ats::core::{composite, CompositeParams};
use ats::mpi::SimConfig;

fn main() {
    let nprocs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16usize);
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    let trace = ats::mpi::run(SimConfig::with_procs(nprocs), move |p| {
        let world = p.comm_world();
        composite::two_communicator_composite(p, &params, &world);
    });
    print!("{}", ats::harness::timeline::render_text(&trace, 120));
    let report = ats::analyzer::analyze(&trace, &ats::analyzer::AnalyzerConfig::default());
    println!("\n{}", report.render(&trace));

    // The paper's EXPERT checks.
    let locs = report.locations_for("LateBroadcast");
    println!(
        "\nLateBroadcast blamed ranks (expect upper half minus its local root): {:?}",
        locs.iter().map(|l| l.rank).collect::<Vec<_>>()
    );
    assert!(report.severity_of("LateSender") > 0.0, "lower half p2p set");
    assert!(
        report.severity_of("LateBroadcast") > 0.0,
        "upper half collective set"
    );
    println!("two-communicator composite OK");
}
