//! The single-property test program, as the paper's generator produces it:
//! pick any property function from the catalog, parameterize it from the
//! command line, run it, and print the timeline plus the analysis.
//!
//! Run with:
//!   cargo run --example single_property -- late_broadcast extrawork=0.08 root=2
//!   cargo run --example single_property -- imbalance_at_mpi_barrier df=peak:low=0.01,high=0.2,n=3
//!   cargo run --example single_property -- --list

use ats::harness::{generate, run_single, ParamValues, RunOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--list" {
        println!("available property functions:");
        for spec in ats::core::CATALOG {
            println!("  {:<32} {}", spec.name, spec.description);
        }
        println!("\nrun one with: cargo run --example single_property -- NAME [key=value ...]");
        return;
    }
    let name = &args[0];
    let spec = match ats::core::catalog::find(name) {
        Some(s) => s,
        None => {
            eprintln!("unknown property `{name}`; use --list");
            std::process::exit(2);
        }
    };
    if args.iter().any(|a| a == "--help") {
        print!("{}", generate::usage(spec));
        return;
    }
    let kv: Vec<&str> = args[1..].iter().map(String::as_str).collect();
    let params = match ParamValues::from_args(spec, &kv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n");
            eprint!("{}", generate::usage(spec));
            std::process::exit(2);
        }
    };
    println!("running {name} with {}", params.to_cli());
    let trace = run_single(name, &params, &RunOpts::default()).expect("catalog name");
    print!("{}", ats::harness::timeline::render_text(&trace, 100));
    let report = ats::analyzer::analyze(&trace, &ats::analyzer::AnalyzerConfig::default());
    println!("\n{}", report.render(&trace));
}
