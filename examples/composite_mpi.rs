//! The paper's Figure 3.3 composite test program: every MPI property
//! function called in sequence with staggered severities — "to quickly
//! determine how many different performance properties can be detected by
//! a performance tool".
//!
//! Run with: `cargo run --example composite_mpi [-- nprocs]`

use ats::core::{composite, CompositeParams};
use ats::mpi::SimConfig;

fn main() {
    let nprocs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8usize);
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    let trace = ats::mpi::run(SimConfig::with_procs(nprocs), move |p| {
        let world = p.comm_world();
        composite::all_mpi_properties(p, &params, &world);
    });
    print!("{}", ats::harness::timeline::render_text(&trace, 120));
    let report = ats::analyzer::analyze(&trace, &ats::analyzer::AnalyzerConfig::default());
    println!("\n{}", report.render(&trace));
    let detected = [
        "LateSender",
        "LateReceiver",
        "WaitAtBarrier",
        "WaitAtNxN",
        "LateBroadcast",
        "LateScatter",
        "EarlyReduce",
        "EarlyGather",
    ]
    .iter()
    .filter(|p| report.severity_of(p) > 0.0)
    .count();
    println!("\n{detected}/8 distinct property kinds detectable in one program");
}
