//! Quickstart: construct a synthetic test program with a known performance
//! property, run it on the virtual-time MPI substrate, and check that an
//! automatic analysis tool finds exactly what was programmed in.
//!
//! Run with: `cargo run --example quickstart`

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::core::{properties::mpi_p2p, BaseComm};
use ats::harness::{ParamValues, Session};
use ats::mpi::SimConfig;
use ats::obs::ObsConfig;

fn main() {
    // A 4-rank MPI program in which the even ranks always send 40ms late.
    let base = BaseComm::default();
    let trace = ats::mpi::run(SimConfig::with_procs(4), move |p| {
        let world = p.comm_world();
        mpi_p2p::late_sender(
            p, &base, /*basework*/ 0.01, /*extrawork*/ 0.04, /*reps*/ 3, &world,
        );
    });
    println!(
        "ran {} ranks, recorded {} events, makespan {}",
        trace.num_locations(),
        trace.num_events(),
        trace.end_time()
    );

    // The tool under test (here: the bundled EXPERT-style analyzer).
    let report = analyze(&trace, &AnalyzerConfig::default());
    println!("\n{}", report.render(&trace));

    // Positive correctness: the programmed property is found, localized,
    // and nothing else is reported.
    let late_sender = report.severity_of("LateSender");
    assert!(late_sender > 0.2, "expected a strong LateSender finding");
    let top = &report.findings[0];
    assert_eq!(top.property, "LateSender");
    assert!(top.call_path.contains("late_sender/MPI_Recv"));
    println!(
        "\nquickstart OK: LateSender severity {:.1}%",
        late_sender * 100.0
    );

    // The same workload through the catalog + Session front door, with the
    // self-observability layer recording: one builder owns the simulation
    // options, the analyzer configuration, and the metrics registry.
    let session = Session::builder().procs(4).obs(ObsConfig::fresh()).build();
    let params = ParamValues::defaults(ats::harness::spec_of("late_sender").unwrap());
    let (trace, report) = session
        .run_and_analyze("late_sender", &params)
        .expect("late_sender is in the catalog");
    assert_eq!(report.findings[0].property, "LateSender");
    let manifest = session.manifest("quickstart").expect("obs is on");
    println!(
        "\nsession run: {} events, {} finding(s), manifest schema {}",
        trace.num_events(),
        report.findings.len(),
        manifest.schema
    );
}
