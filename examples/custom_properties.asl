// Example user-defined ASL property set for `ats asl` — see
// ats::analyzer::asl for the language. Try:
//
//   cargo run --bin ats -- asl examples/custom_properties.asl late_sender extrawork=0.08

PROPERTY LateSender OVER p2p_pair {
    LET blocked = clamp(send_post, recv_posted, recv_completion);
    WAIT blocked - recv_posted;
    CONDITION wait > 0;
    LOCATE receiver;
}

// A stricter variant: only count stalls above 10ms.
PROPERTY SevereLateSender OVER p2p_pair {
    LET blocked = clamp(send_post, recv_posted, recv_completion);
    WAIT blocked - recv_posted;
    CONDITION wait > 0.01;
    LOCATE receiver;
}

// Count time the sender spends blocked on big synchronous messages only.
PROPERTY BigSyncStall OVER p2p_pair {
    WAIT clamp(recv_posted, send_post, send_exit) - send_post;
    CONDITION bytes >= 1024;
    CONDITION wait > 0;
    LOCATE sender;
}
