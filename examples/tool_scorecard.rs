//! Score a tool against the whole suite: run every catalog entry (positive
//! and negative) and report positive/negative correctness — the suite's
//! reason to exist. Here the tool under test is the bundled analyzer; a
//! real tool would hook in at the same trace interface.
//!
//! Run with: `cargo run --example tool_scorecard`

use ats::analyzer::AnalyzerConfig;
use ats::harness::{correctness, RunOpts};

fn main() {
    let summary =
        correctness::score_catalog(&RunOpts::default().procs(8), &AnalyzerConfig::default())
            .expect("catalog runnable");
    print!("{}", summary.render());
    if summary.all_correct() {
        println!("\ntool scorecard: PASS (all positive properties detected + localized, all negative cases silent)");
    } else {
        println!("\ntool scorecard: FAIL");
        std::process::exit(1);
    }
}
